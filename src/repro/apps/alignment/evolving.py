"""Evolving graph versions with node-identity ground truth.

The paper aligns three versions of a biological RDF graph (Guide to
Pharmacology) from different times; the original URIs do not change over
time, which provides the ground-truth alignment.  This module emulates
that: a base graph evolves through edge churn plus node arrivals and
departures, keeping node identifiers stable -- shared ids across versions
are the ground truth.

Two evolution styles are provided:

- :func:`evolve_graph` copies the input and mutates the copy (the
  original batch workload: align k independent versions);
- :func:`evolve_inplace` applies the same churn *through a*
  :class:`~repro.streaming.delta.DeltaLog`, which is what the streaming
  workload needs -- :class:`EvolvingAlignmentSession` keeps one
  :class:`~repro.streaming.session.IncrementalFSim` session alive while
  the graph evolves under it, so each step's alignment is maintained
  incrementally instead of recomputed from the L-initialization.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.exceptions import GraphError
from repro.graph.digraph import LabeledDigraph, Node
from repro.graph.generators import power_law_graph, uniform_labels


def evolve_graph(
    graph: LabeledDigraph,
    seed: int,
    edge_churn: float = 0.08,
    node_birth: float = 0.05,
    node_death: float = 0.03,
    name: str = "",
) -> LabeledDigraph:
    """One evolution step: edge churn plus node arrivals/departures.

    - ``edge_churn`` of edges are rewired (half removed, half added);
    - ``node_death`` of nodes disappear (with incident edges);
    - ``node_birth`` new nodes appear, wired to random survivors with the
      existing label distribution.

    The churn model itself lives in :func:`evolve_inplace`; this wrapper
    copies first (same mutation sequence for a given seed).
    """
    evolved = graph.copy(name=name or f"{graph.name}-evolved")
    evolve_inplace(
        evolved, seed,
        edge_churn=edge_churn, node_birth=node_birth, node_death=node_death,
    )
    return evolved


def evolve_inplace(
    log,
    seed: int,
    edge_churn: float = 0.08,
    node_birth: float = 0.05,
    node_death: float = 0.03,
) -> int:
    """One evolution step applied in place (the canonical churn model).

    ``log`` is a :class:`~repro.streaming.delta.DeltaLog` -- so a
    streaming session observing it sees the step as one structured
    delta -- or anything else exposing the digraph mutator/read API,
    including a bare :class:`LabeledDigraph` (which is how
    :func:`evolve_graph` reuses this).  Returns the number of mutator
    calls made.
    """
    for ratio in (edge_churn, node_birth, node_death):
        if ratio < 0:
            raise GraphError(f"evolution ratios must be non-negative, got {ratio}")
    rng = random.Random(seed)
    mutations = 0

    victims = list(log.nodes())
    rng.shuffle(victims)
    for node in victims[: int(round(node_death * len(victims)))]:
        log.remove_node(node)
        mutations += 1

    edges = list(log.edges())
    rng.shuffle(edges)
    removals = int(round(edge_churn * len(edges) / 2))
    for source, target in edges[:removals]:
        log.remove_edge(source, target)
        mutations += 1

    survivors = list(log.nodes())
    labels = [log.label(node) for node in survivors]
    additions = int(round(edge_churn * len(edges) / 2))
    added = 0
    guard = 0
    while added < additions and guard < 50 * additions + 50:
        guard += 1
        source, target = rng.choice(survivors), rng.choice(survivors)
        if source != target and log.add_edge_if_absent(source, target):
            added += 1
            mutations += 1

    births = int(round(node_birth * len(victims)))
    next_id = 0
    for _ in range(births):
        while log.has_node(f"new_{next_id}"):
            next_id += 1
        newcomer = f"new_{next_id}"
        next_id += 1
        log.add_node(newcomer, rng.choice(labels))
        mutations += 1
        for _edge in range(rng.randint(1, 3)):
            partner = rng.choice(survivors)
            if rng.random() < 0.5:
                if log.add_edge_if_absent(newcomer, partner):
                    mutations += 1
            else:
                if log.add_edge_if_absent(partner, newcomer):
                    mutations += 1
    return mutations


class EvolvingAlignmentSession:
    """Incrementally maintained alignment of an evolving graph.

    Holds a fixed reference version and a live copy that evolves in
    place; after every :meth:`step`, the FSim scores against the
    reference are brought up to date through one
    :class:`~repro.streaming.session.IncrementalFSim` session (bitwise
    identical to recomputing from scratch in the default ``replay``
    mode) and projected to the paper's argmax alignment.
    """

    def __init__(self, base: LabeledDigraph, config=None, mode: str = "replay"):
        from repro.core.config import FSimConfig
        from repro.simulation.base import Variant
        from repro.streaming.session import IncrementalFSim

        self.reference = base
        self.current = base.copy(name=f"{base.name or 'base'}-evolving")
        self.config = config or FSimConfig(
            variant=Variant.B, label_function="indicator", theta=1.0
        )
        self.session = IncrementalFSim(
            self.current, self.reference, self.config, mode=mode
        )

    def step(
        self,
        seed: int,
        edge_churn: float = 0.08,
        node_birth: float = 0.05,
        node_death: float = 0.03,
    ) -> Dict[Node, List[Node]]:
        """Evolve once and return the refreshed argmax alignment."""
        evolve_inplace(
            self.session.log1, seed,
            edge_churn=edge_churn, node_birth=node_birth,
            node_death=node_death,
        )
        return self.alignment()

    def alignment(self) -> Dict[Node, List[Node]]:
        """The current alignment ``{u: argmax partners}`` (paper's A_u)."""
        result = self.session.compute()
        return {
            u: result.argmax_partners(u, tolerance=1e-9)
            for u in self.current.nodes()
        }

    def self_match_rate(self) -> float:
        """Fraction of surviving shared nodes aligned back to themselves
        (the evolving-version ground-truth accuracy)."""
        alignment = self.alignment()
        shared = [u for u in self.current.nodes() if self.reference.has_node(u)]
        if not shared:
            return 0.0
        hits = sum(1 for u in shared if alignment.get(u) == [u])
        return hits / len(shared)


def generate_bio_versions(
    num_nodes: int = 220,
    num_labels: int = 8,
    seed: int = 0,
    versions: int = 3,
) -> List[LabeledDigraph]:
    """Three versions of a bio-like graph (the paper's G1, G2, G3).

    The base mimics the GtoPdb graphs: 8 node labels, skewed in-degrees
    (target/family hubs).  Successive versions grow slightly, like the
    paper's versions (133k -> 139k -> 145k nodes).
    """
    labels = uniform_labels(num_nodes, num_labels, seed=seed + 1)
    base = power_law_graph(num_nodes, 2, labels, seed=seed + 2, name="bio-G1")
    graphs = [base]
    for index in range(1, versions):
        graphs.append(
            evolve_graph(
                graphs[-1],
                seed=seed + 10 * index,
                name=f"bio-G{index + 1}",
            )
        )
    return graphs
