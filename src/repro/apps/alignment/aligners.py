"""Graph aligners: FSim plus five reimplemented baselines.

Each aligner exposes ``align(graph1, graph2) -> {u: [candidates]}``:
node ``u`` of G1 is aligned to a *set* of G2 candidates (the paper's
``A_u``), which feeds the Table 9 F1 formula.

Baselines (author code unavailable; core ideas reimplemented):

- k-bisimulation [10]: align to the nodes in the same k-bisimulation
  block of the disjoint union.
- exact bisimulation: the degenerate baseline the paper reports as 0%
  ("there is no exact bisimulation relation between two graphs").
- Olap [7]: bisimulation-partition alignment -- stable color refinement
  (labels + successor/predecessor color *sets*) on the union, align
  within blocks.
- FINAL [46]: attributed iterative similarity with degree-normalized
  neighbor averaging (the Sylvester-equation fixpoint in iterative form).
- EWS [47]: seed-and-percolate matching grown from high-confidence
  unique-signature seeds.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.api import fsim_matrix, fsim_matrix_many
from repro.core.config import FSimConfig
from repro.graph.builders import union
from repro.graph.digraph import LabeledDigraph, Node
from repro.simulation.base import Variant
from repro.simulation.kbisimulation import kbisimulation_partition
from repro.simulation.maximal import maximal_simulation

Alignment = Dict[Node, List[Node]]


def _prefixed_union(
    graph1: LabeledDigraph, graph2: LabeledDigraph
) -> Tuple[LabeledDigraph, Dict[Node, Node], Dict[Node, Node]]:
    """Disjoint union with ("a", u) / ("b", v) prefixes plus the renamers."""
    renamed1 = LabeledDigraph("u1")
    for node in graph1.nodes():
        renamed1.add_node(("a", node), graph1.label(node))
    for source, target in graph1.edges():
        renamed1.add_edge(("a", source), ("a", target))
    renamed2 = LabeledDigraph("u2")
    for node in graph2.nodes():
        renamed2.add_node(("b", node), graph2.label(node))
    for source, target in graph2.edges():
        renamed2.add_edge(("b", source), ("b", target))
    joint = union(renamed1, renamed2, name="joint")
    map1 = {node: ("a", node) for node in graph1.nodes()}
    map2 = {node: ("b", node) for node in graph2.nodes()}
    return joint, map1, map2


class FSimAligner:
    """Align with fractional chi-simulation: A_u = argmax_v FSim(u, v)."""

    def __init__(self, variant: Variant = Variant.B, config: Optional[FSimConfig] = None):
        self.variant = Variant(variant)
        self.name = f"FSim{self.variant.value}"
        self.config = config or FSimConfig(
            variant=self.variant, label_function="indicator", theta=1.0
        )

    def align(self, graph1: LabeledDigraph, graph2: LabeledDigraph) -> Alignment:
        result = fsim_matrix(graph1, graph2, config=self.config)
        return self._project(graph1, result)

    def align_many(
        self,
        graphs1: Sequence[LabeledDigraph],
        graph2: LabeledDigraph,
        workers: Optional[int] = None,
        executor=None,
    ) -> List[Alignment]:
        """Align several graph versions against one shared target.

        The paper's evolving-version workload (Table 9) repeatedly
        aligns versions of the same RDF graph; batching through
        :func:`~repro.core.api.fsim_matrix_many` lowers the shared
        target once and optionally shards whole versions over the
        :mod:`repro.runtime` executor.  Returns one alignment per input
        graph, in order.
        """
        results = fsim_matrix_many(
            graphs1, graph2, config=self.config, workers=workers,
            executor=executor,
        )
        return [
            self._project(graph1, result)
            for graph1, result in zip(graphs1, results)
        ]

    @staticmethod
    def _project(graph1: LabeledDigraph, result) -> Alignment:
        return {
            u: result.argmax_partners(u, tolerance=1e-9) for u in graph1.nodes()
        }


class KBisimulationAligner:
    """Align u to every v in the same k-bisimulation block of the union."""

    def __init__(self, k: int = 2):
        self.k = k
        self.name = f"{k}-bisim"

    def align(self, graph1: LabeledDigraph, graph2: LabeledDigraph) -> Alignment:
        joint, map1, map2 = _prefixed_union(graph1, graph2)
        blocks = kbisimulation_partition(joint, self.k)
        by_block: Dict[int, List[Node]] = {}
        for v in graph2.nodes():
            by_block.setdefault(blocks[map2[v]], []).append(v)
        return {
            u: sorted(by_block.get(blocks[map1[u]], []), key=repr)
            for u in graph1.nodes()
        }


class ExactBisimulationAligner:
    """Align via exact bisimulation (the paper's 0% baseline)."""

    name = "bisim"

    def align(self, graph1: LabeledDigraph, graph2: LabeledDigraph) -> Alignment:
        relation = maximal_simulation(graph1, graph2, Variant.B)
        return {u: sorted(relation.image(u), key=repr) for u in graph1.nodes()}


class OlapAligner:
    """Partition-refinement (bisimulation-style) alignment, Olap-like.

    Color refinement with successor/predecessor color *sets* on the
    disjoint union, then alignment within blocks.  Refinement depth is
    bounded (Olap's merge processes RDF graphs level by level to a
    bounded depth); running to the stable partition shatters every block
    under drift and scores 0, which is the exact-bisimulation row of
    Table 9, not Olap's.
    """

    def __init__(self, depth: int = 2):
        self.depth = depth
        self.name = "Olap"

    def align(self, graph1: LabeledDigraph, graph2: LabeledDigraph) -> Alignment:
        joint, map1, map2 = _prefixed_union(graph1, graph2)
        interner: Dict[Hashable, int] = {}

        def intern(key: Hashable) -> int:
            return interner.setdefault(key, len(interner))

        colors = {node: intern(("l", joint.label(node))) for node in joint.nodes()}
        for _ in range(self.depth):
            distinct = len(set(colors.values()))
            colors = {
                node: intern(
                    (
                        colors[node],
                        frozenset(colors[t] for t in joint.out_neighbors(node)),
                        frozenset(colors[s] for s in joint.in_neighbors(node)),
                    )
                )
                for node in joint.nodes()
            }
            if len(set(colors.values())) == distinct:
                break
        by_color: Dict[int, List[Node]] = {}
        for v in graph2.nodes():
            by_color.setdefault(colors[map2[v]], []).append(v)
        return {
            u: sorted(by_color.get(colors[map1[u]], []), key=repr)
            for u in graph1.nodes()
        }


class FinalAligner:
    """Iterative attributed similarity (FINAL-like).

    ``s(u, v) = (1 - alpha) L(u, v) + alpha * mean over neighbor pairs``
    with degree normalization, restricted to same-label pairs, iterated to
    convergence; align to the argmax.
    """

    name = "FINAL"

    def __init__(self, alpha: float = 0.8, iterations: int = 10):
        self.alpha = alpha
        self.iterations = iterations

    def align(self, graph1: LabeledDigraph, graph2: LabeledDigraph) -> Alignment:
        pairs = [
            (u, v)
            for label in graph1.labels()
            for u in graph1.nodes_with_label(label)
            for v in graph2.nodes_with_label(label)
        ]
        scores = {pair: 1.0 for pair in pairs}
        for _ in range(self.iterations):
            updated = {}
            for u, v in pairs:
                total = 0.0
                count = 0
                for u2, v2 in (
                    (x, y)
                    for x in graph1.out_neighbors(u)
                    for y in graph2.out_neighbors(v)
                ):
                    total += scores.get((u2, v2), 0.0)
                    count += 1
                for u2, v2 in (
                    (x, y)
                    for x in graph1.in_neighbors(u)
                    for y in graph2.in_neighbors(v)
                ):
                    total += scores.get((u2, v2), 0.0)
                    count += 1
                neighborhood = total / count if count else 0.0
                updated[(u, v)] = (1 - self.alpha) + self.alpha * neighborhood
            scores = updated
        best: Dict[Node, List[Node]] = {}
        for u in graph1.nodes():
            row = [(v, s) for (x, v), s in scores.items() if x == u]
            if not row:
                best[u] = []
                continue
            top = max(s for _, s in row)
            best[u] = sorted([v for v, s in row if s >= top - 1e-12], key=repr)
        return best


class GsanaAligner:
    """Positional-signature aligner (GSA NA-like).

    GSA NA aligns labeled networks by global *position*: every node is
    embedded by its distances to a set of anchor nodes, and same-label
    nodes with the closest embeddings are matched.  Anchors here are the
    highest-degree nodes per label (stable across versions); matching is
    greedy nearest-embedding.  Positional signatures are coarse, which is
    why the paper reports it far below FSim (11.8-14.9%).
    """

    name = "GSANA"

    def __init__(self, num_anchors: int = 8):
        self.num_anchors = num_anchors

    def align(self, graph1: LabeledDigraph, graph2: LabeledDigraph) -> Alignment:
        from repro.graph.subgraph import undirected_distances

        def anchors(graph: LabeledDigraph) -> List[Node]:
            ranked = sorted(
                graph.nodes(),
                key=lambda n: (-(graph.out_degree(n) + graph.in_degree(n)), repr(n)),
            )
            return ranked[: self.num_anchors]

        def embed(graph: LabeledDigraph, anchor_nodes: List[Node]):
            distance_maps = [undirected_distances(graph, a) for a in anchor_nodes]
            infinity = graph.num_nodes + 1
            return {
                node: tuple(dm.get(node, infinity) for dm in distance_maps)
                for node in graph.nodes()
            }

        embedding1 = embed(graph1, anchors(graph1))
        embedding2 = embed(graph2, anchors(graph2))
        by_label: Dict[Hashable, List[Node]] = {}
        for v in graph2.nodes():
            by_label.setdefault(graph2.label(v), []).append(v)
        alignment: Alignment = {}
        used: set = set()
        order = sorted(graph1.nodes(), key=repr)
        for u in order:
            vector_u = embedding1[u]
            best, best_distance = None, None
            for v in by_label.get(graph1.label(u), ()):
                if v in used:
                    continue
                distance = sum(
                    (a - b) ** 2 for a, b in zip(vector_u, embedding2[v])
                )
                if best_distance is None or (distance, repr(v)) < (
                    best_distance, repr(best),
                ):
                    best, best_distance = v, distance
            if best is None:
                alignment[u] = []
            else:
                alignment[u] = [best]
                used.add(best)
        return alignment


class EWSAligner:
    """Seeded percolation matching (EWS-like, "expand when stuck").

    Faithful to the method's premise -- "growing a graph matching from a
    *handful* of seeds": only ``num_seeds`` high-confidence pairs (unique
    (label, degrees, neighbor-label) signatures) are used as seeds, then
    matching percolates to the candidate pair with the most matched
    witnesses (the NoisySeeds criterion: at least r = 2 witnesses).
    Coverage is limited by how far percolation carries from the seeds,
    which is what caps EWS below the FSim aligners in Table 9.
    """

    name = "EWS"

    def __init__(self, num_seeds: int = 10):
        self.num_seeds = num_seeds

    def align(self, graph1: LabeledDigraph, graph2: LabeledDigraph) -> Alignment:
        def signature(graph: LabeledDigraph, node: Node):
            return (
                graph.label(node),
                graph.out_degree(node),
                graph.in_degree(node),
                tuple(sorted(graph.label(n) for n in graph.out_neighbors(node))),
                tuple(sorted(graph.label(n) for n in graph.in_neighbors(node))),
            )

        unique1: Dict[Hashable, Node] = {}
        counts1: Dict[Hashable, int] = {}
        for node in graph1.nodes():
            sig = signature(graph1, node)
            counts1[sig] = counts1.get(sig, 0) + 1
            unique1[sig] = node
        unique2: Dict[Hashable, Node] = {}
        counts2: Dict[Hashable, int] = {}
        for node in graph2.nodes():
            sig = signature(graph2, node)
            counts2[sig] = counts2.get(sig, 0) + 1
            unique2[sig] = node
        seed_signatures = sorted(
            (
                sig
                for sig in unique1
                if counts1.get(sig) == 1 and counts2.get(sig) == 1
            ),
            key=repr,
        )[: self.num_seeds]
        matched: Dict[Node, Node] = {
            unique1[sig]: unique2[sig] for sig in seed_signatures
        }
        used = set(matched.values())

        # Percolate: repeatedly adopt the candidate pair with the most
        # matched neighbor witnesses (NoisySeeds requires >= 2).
        for threshold in (2,):
            progress = True
            while progress:
                progress = False
                votes: Dict[Tuple[Node, Node], int] = {}
                for u, v in matched.items():
                    for u2 in graph1.out_neighbors(u):
                        if u2 in matched:
                            continue
                        for v2 in graph2.out_neighbors(v):
                            if v2 in used or graph1.label(u2) != graph2.label(v2):
                                continue
                            votes[(u2, v2)] = votes.get((u2, v2), 0) + 1
                    for u2 in graph1.in_neighbors(u):
                        if u2 in matched:
                            continue
                        for v2 in graph2.in_neighbors(v):
                            if v2 in used or graph1.label(u2) != graph2.label(v2):
                                continue
                            votes[(u2, v2)] = votes.get((u2, v2), 0) + 1
                if votes:
                    (u2, v2), count = max(
                        votes.items(), key=lambda item: (item[1], repr(item[0]))
                    )
                    if count >= threshold:
                        matched[u2] = v2
                        used.add(v2)
                        progress = True
        return {u: [matched[u]] if u in matched else [] for u in graph1.nodes()}
