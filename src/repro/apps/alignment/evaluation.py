"""Alignment F1 (the Table 9 metric).

The paper: ``F1 = sum_u 2 P_u R_u / (|V1| (P_u + R_u))`` where ``P_u`` is
``1/|A_u|`` and ``R_u`` is 1 if ``A_u`` contains the ground-truth partner
of ``u``, both 0 otherwise.  Ground truth here is node-identity across
evolving versions; nodes of G1 absent from G2 are excluded (they have no
true partner).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.apps.alignment.aligners import Alignment
from repro.graph.digraph import LabeledDigraph, Node


def alignment_f1(
    alignment: Alignment, graph1: LabeledDigraph, graph2: LabeledDigraph
) -> float:
    """Table 9's F1 against the node-identity ground truth."""
    shared = [u for u in graph1.nodes() if graph2.has_node(u)]
    if not shared:
        return 0.0
    total = 0.0
    for u in shared:
        candidates = alignment.get(u, [])
        if candidates and u in candidates:
            precision = 1.0 / len(candidates)
            recall = 1.0
            total += 2.0 * precision * recall / (precision + recall)
    return total / len(shared)


@dataclass(frozen=True)
class AlignmentReport:
    aligner: str
    pair: str
    f1: float

    def cell(self) -> str:
        return f"{100.0 * self.f1:.1f}"


def evaluate_aligners(
    aligners: List,
    graph_pairs: Dict[str, tuple],
) -> Dict[str, List[AlignmentReport]]:
    """Run every aligner on every (G1, G2) pair; Table 9's grid."""
    results: Dict[str, List[AlignmentReport]] = {}
    for pair_name, (graph1, graph2) in graph_pairs.items():
        results[pair_name] = [
            AlignmentReport(
                aligner=aligner.name,
                pair=pair_name,
                f1=alignment_f1(aligner.align(graph1, graph2), graph1, graph2),
            )
            for aligner in aligners
        ]
    return results


def render_table9(results: Dict[str, List[AlignmentReport]]) -> str:
    """Render the Table 9 layout (rows = graph pairs, columns = aligners)."""
    pairs = list(results)
    names = [report.aligner for report in results[pairs[0]]]
    width = max(9, max(len(n) for n in names) + 2)
    lines = ["Graphs".ljust(10) + "".join(name.rjust(width) for name in names)]
    for pair_name in pairs:
        cells = [report.cell().rjust(width) for report in results[pair_name]]
        lines.append(pair_name.ljust(10) + "".join(cells))
    return "\n".join(lines)
