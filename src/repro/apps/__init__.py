"""The paper's three case-study applications (Section 5.4).

- :mod:`repro.apps.pattern_matching` -- approximate subgraph pattern
  matching (Table 6, Figure 10);
- :mod:`repro.apps.similarity` -- node similarity measurement on a
  DBIS-like bibliographic network (Tables 7 and 8);
- :mod:`repro.apps.alignment` -- graph alignment across evolving graph
  versions (Table 9).
"""
