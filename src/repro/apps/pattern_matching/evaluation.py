"""F1 evaluation of pattern matchers (Table 6).

The paper's metric for a query Q with ground truth and returned top-1
match phi: ``P = |phi_t| / |phi|``, ``R = |phi_t| / |Q|`` and
``F1 = 2 P R / (P + R)``, where phi_t is the set of correctly discovered
node matches and |.| counts nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.apps.pattern_matching.queries import Query, Scenario, generate_workload
from repro.graph.digraph import LabeledDigraph, Node


def f1_score(match: Optional[Dict[Node, Node]], truth: Dict[Node, Node]) -> float:
    """The paper's F1 for one query; an empty/missing match scores 0."""
    if not match:
        return 0.0
    correct = sum(1 for q, v in match.items() if truth.get(q) == v)
    if correct == 0:
        return 0.0
    precision = correct / len(match)
    recall = correct / len(truth)
    return 2.0 * precision * recall / (precision + recall)


@dataclass(frozen=True)
class MatcherReport:
    """Average F1 of one matcher over a workload."""

    matcher: str
    scenario: Scenario
    avg_f1: float
    num_queries: int
    num_failed: int  #: queries where the matcher returned nothing

    @property
    def no_results(self) -> bool:
        """True when the matcher failed on every query (the paper's "-")."""
        return self.num_failed == self.num_queries

    def cell(self) -> str:
        """Table-6-style cell: percentage, or "-" for total failure."""
        if self.no_results:
            return "-"
        return f"{100.0 * self.avg_f1:.1f}"


def evaluate_matcher(
    matcher, queries: Iterable[Query], data: LabeledDigraph
) -> MatcherReport:
    """Average the paper's F1 for ``matcher`` over ``queries``.

    Matchers exposing ``match_many`` (FSim) get the whole workload in
    one batched call, amortizing the data-graph compilation; the rest
    are driven query by query.
    """
    queries = list(queries)
    total = 0.0
    failed = 0
    scenario = queries[0].scenario if queries else Scenario.EXACT
    if hasattr(matcher, "match_many"):
        matches = matcher.match_many([query.graph for query in queries], data)
    else:
        matches = (matcher.match(query.graph, data) for query in queries)
    for query, match in zip(queries, matches):
        if not match:
            failed += 1
        total += f1_score(match, query.truth)
    count = max(1, len(queries))
    return MatcherReport(
        matcher=matcher.name,
        scenario=scenario,
        avg_f1=total / count,
        num_queries=len(queries),
        num_failed=failed,
    )


def evaluate_all(
    data: LabeledDigraph,
    matchers: List,
    scenarios: Iterable[Scenario] = tuple(Scenario),
    num_queries: int = 100,
    min_size: int = 3,
    max_size: int = 13,
    seed: int = 0,
) -> Dict[Scenario, List[MatcherReport]]:
    """Run every matcher on every scenario's workload (Table 6)."""
    results: Dict[Scenario, List[MatcherReport]] = {}
    for scenario in scenarios:
        workload = generate_workload(
            data, scenario, num_queries=num_queries,
            min_size=min_size, max_size=max_size, seed=seed,
        )
        results[scenario] = [
            evaluate_matcher(matcher, workload, data) for matcher in matchers
        ]
    return results


def render_table6(results: Dict[Scenario, List[MatcherReport]]) -> str:
    """Render the Table 6 layout (rows = scenarios, columns = matchers)."""
    scenarios = list(results)
    matchers = [report.matcher for report in results[scenarios[0]]]
    width = max(10, max(len(m) for m in matchers) + 2)
    header = "Scenario".ljust(12) + "".join(m.rjust(width) for m in matchers)
    lines = [header]
    for scenario in scenarios:
        cells = [report.cell().rjust(width) for report in results[scenario]]
        lines.append(scenario.value.ljust(12) + "".join(cells))
    return "\n".join(lines)
