"""Approximate subgraph pattern matching (Table 6 case study)."""

from repro.apps.pattern_matching.queries import (
    Query,
    Scenario,
    generate_query,
    generate_workload,
)
from repro.apps.pattern_matching.matcher import FSimMatcher
from repro.apps.pattern_matching.baselines import (
    StrongSimulationMatcher,
    TSpanMatcher,
    NagaMatcher,
    GFinderMatcher,
)
from repro.apps.pattern_matching.evaluation import (
    f1_score,
    evaluate_matcher,
    evaluate_all,
)

__all__ = [
    "Query",
    "Scenario",
    "generate_query",
    "generate_workload",
    "FSimMatcher",
    "StrongSimulationMatcher",
    "TSpanMatcher",
    "NagaMatcher",
    "GFinderMatcher",
    "f1_score",
    "evaluate_matcher",
    "evaluate_all",
]
