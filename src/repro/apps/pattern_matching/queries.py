"""Query workload generation for the pattern-matching case study.

Section 5.4: "queries are generated randomly by extracting subgraphs from
the data graph and introducing structural noises (randomly insert edges,
up to 33%) or label noises (randomly modify node labels, up to 33%)",
across four scenarios: Exact, Noisy-E, Noisy-L and Combined.  Because
queries are extracted from the data graph, the extraction mapping is the
ground truth.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, Hashable, List

from repro.exceptions import GraphError
from repro.graph.digraph import LabeledDigraph, Node
from repro.graph.subgraph import extract_connected_subgraph

#: The paper's noise budget ("up to 33%").
NOISE_BUDGET = 0.33


class Scenario(str, enum.Enum):
    """The four query scenarios of Table 6."""

    EXACT = "exact"
    NOISY_E = "noisy-e"  #: structural noise only (random edge insertions)
    NOISY_L = "noisy-l"  #: label noise only (random label modifications)
    COMBINED = "combined"  #: both kinds of noise

    @property
    def has_edge_noise(self) -> bool:
        return self in (Scenario.NOISY_E, Scenario.COMBINED)

    @property
    def has_label_noise(self) -> bool:
        return self in (Scenario.NOISY_L, Scenario.COMBINED)


@dataclass(frozen=True)
class Query:
    """One evaluation query: the (noised) pattern plus its ground truth.

    ``truth`` maps each query node to the data-graph node it was extracted
    from (query nodes are renamed ``q0, q1, ...``).
    """

    graph: LabeledDigraph
    truth: Dict[Node, Node]
    scenario: Scenario
    seed: int


def generate_query(
    data: LabeledDigraph,
    size: int,
    scenario: Scenario,
    seed: int,
) -> Query:
    """Extract one connected query of ``size`` nodes and apply the noise
    required by ``scenario``."""
    scenario = Scenario(scenario)
    rng = random.Random(seed)
    extracted = extract_connected_subgraph(data, size, seed=seed)
    originals = list(extracted.nodes())
    renames = {original: f"q{i}" for i, original in enumerate(originals)}
    query = LabeledDigraph(f"query-{scenario.value}-{seed}")
    for original in originals:
        query.add_node(renames[original], extracted.label(original))
    for source, target in extracted.edges():
        query.add_edge(renames[source], renames[target])
    truth = {renames[original]: original for original in originals}

    if scenario.has_edge_noise:
        _perturb_random_edges(query, rng)
    if scenario.has_label_noise:
        _modify_random_labels(query, list(data.labels()), rng)
    return Query(graph=query, truth=truth, scenario=scenario, seed=seed)


def _perturb_random_edges(query: LabeledDigraph, rng: random.Random) -> None:
    """Perturb up to NOISE_BUDGET * |E| edges in place.

    Each operation is a coin flip between inserting a random new edge and
    deleting an existing one.  Deletions are only applied when they keep
    the query weakly connected (a disconnected pattern is not a valid
    query).  The insert/delete mix is what gives the asymmetric picture of
    Table 6: deletions are harmless to edit-distance matchers (extra data
    edges are free) and to simulation (fewer constraints), insertions
    break exact simulation.
    """
    from repro.graph.subgraph import undirected_distances

    budget = max(1, int(round(NOISE_BUDGET * query.num_edges)))
    count = rng.randint(1, budget)
    nodes = list(query.nodes())
    for _ in range(count):
        if rng.random() < 0.5:
            for _attempt in range(50):
                source, target = rng.choice(nodes), rng.choice(nodes)
                if source != target and query.add_edge_if_absent(source, target):
                    break
        else:
            edges = list(query.edges())
            rng.shuffle(edges)
            for source, target in edges:
                query.remove_edge(source, target)
                still_connected = len(
                    undirected_distances(query, nodes[0])
                ) == len(nodes)
                if still_connected:
                    break
                query.add_edge(source, target)


def _modify_random_labels(
    query: LabeledDigraph, alphabet: List[Hashable], rng: random.Random
) -> None:
    """Modify up to NOISE_BUDGET * |V| node labels in place."""
    budget = max(1, int(round(NOISE_BUDGET * query.num_nodes)))
    count = rng.randint(1, budget)
    victims = rng.sample(list(query.nodes()), min(count, query.num_nodes))
    for node in victims:
        current = query.label(node)
        options = [label for label in alphabet if label != current]
        if options:
            query.set_label(node, rng.choice(options))


def generate_workload(
    data: LabeledDigraph,
    scenario: Scenario,
    num_queries: int = 100,
    min_size: int = 3,
    max_size: int = 13,
    seed: int = 0,
) -> List[Query]:
    """The paper's workload: ``num_queries`` random queries of sizes 3-13."""
    if min_size > max_size:
        raise GraphError(f"min_size {min_size} exceeds max_size {max_size}")
    rng = random.Random(seed)
    queries = []
    for index in range(num_queries):
        size = rng.randint(min_size, min(max_size, data.num_nodes))
        queries.append(
            generate_query(data, size, scenario, seed=seed * 100_003 + index)
        )
    return queries
