"""Reimplemented pattern-matching baselines.

The paper compares against author-provided implementations of strong
simulation [1], TSpan [31], NAGA [35] and G-Finder [36].  Those codes are
not public, so each class below reimplements the *core idea* the paper's
comparison hinges on:

- :class:`StrongSimulationMatcher` -- exact simulation over balls; fails
  entirely once the query is noised (the paper's point).
- :class:`TSpanMatcher` -- edit-distance matching tolerating up to ``x``
  mismatched (missing) edges but requiring exact labels, so it shines on
  Noisy-E and returns nothing under label noise.
- :class:`NagaMatcher` -- chi-square neighborhood-significance seeds with
  greedy expansion.
- :class:`GFinderMatcher` -- label+structure candidate filtering with
  greedy lookup-and-extend; brittle to label noise, moderate otherwise.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.graph.digraph import LabeledDigraph, Node
from repro.simulation.strong import strong_simulation


def _consistent_edges(
    query: LabeledDigraph, data: LabeledDigraph, mapping: Dict[Node, Node]
) -> int:
    """Number of query edges preserved by ``mapping`` (match quality)."""
    return sum(
        1
        for source, target in query.edges()
        if source in mapping
        and target in mapping
        and data.has_edge(mapping[source], mapping[target])
    )


class StrongSimulationMatcher:
    """Exact strong simulation [Ma et al.]; returns None when no ball matches.

    The relation of a match ball may pair a query node with several data
    nodes; the mapping is extracted greedily, preferring candidates that
    are edge-consistent with the nodes already placed, and the best
    mapping over the first ``max_balls`` match balls is reported.
    """

    name = "StrongSim"

    def __init__(self, max_balls: int = 10):
        self.max_balls = max_balls

    def match(
        self, query: LabeledDigraph, data: LabeledDigraph
    ) -> Optional[Dict[Node, Node]]:
        matches = strong_simulation(query, data, max_matches=self.max_balls)
        if not matches:
            return None
        best_mapping: Optional[Dict[Node, Node]] = None
        best_consistency = -1
        for match in matches:
            mapping = self._extract_mapping(query, data, match.relation)
            consistency = _consistent_edges(query, data, mapping)
            if consistency > best_consistency:
                best_mapping, best_consistency = mapping, consistency
        return best_mapping or None

    @staticmethod
    def _extract_mapping(
        query: LabeledDigraph, data: LabeledDigraph, relation
    ) -> Dict[Node, Node]:
        mapping: Dict[Node, Node] = {}
        used: Set[Node] = set()
        # Place the most-constrained query nodes (smallest image) first.
        order = sorted(
            query.nodes(), key=lambda q: (len(relation.image(q)), repr(q))
        )
        for query_node in order:
            image = sorted(relation.image(query_node), key=repr)
            best, best_score = None, (-1, False)
            for candidate in image:
                consistency = sum(
                    1
                    for other, placed in mapping.items()
                    if (
                        query.has_edge(query_node, other)
                        and data.has_edge(candidate, placed)
                    )
                    or (
                        query.has_edge(other, query_node)
                        and data.has_edge(placed, candidate)
                    )
                )
                score = (consistency, candidate not in used)
                if score > best_score:
                    best, best_score = candidate, score
            if best is not None:
                mapping[query_node] = best
                used.add(best)
        return mapping


class TSpanMatcher:
    """Edit-distance subgraph matching with up to ``max_missing`` edges.

    Backtracking search assigning each query node to a distinct data node
    of the *same label*; query edges may be unmatched up to the budget
    (TSpan "favors the case with missing edges rather than nodes").  A
    step budget bounds worst-case behaviour.
    """

    def __init__(self, max_missing: int = 1, step_budget: int = 50_000):
        self.max_missing = max_missing
        self.step_budget = step_budget
        self.name = f"TSpan-{max_missing}"

    def match(
        self, query: LabeledDigraph, data: LabeledDigraph
    ) -> Optional[Dict[Node, Node]]:
        order = self._connected_order(query)
        candidates = {
            q: list(data.nodes_with_label(query.label(q))) for q in order
        }
        if any(not candidates[q] for q in order):
            return None
        # Iterative deepening over the edit budget: a match with fewer
        # mismatched edges is always preferred (TSpan enumerates all
        # matches up to the threshold; the best one wins).
        for budget in range(self.max_missing + 1):
            self._steps = 0
            assignment: Dict[Node, Node] = {}
            used: Set[Node] = set()
            if self._search(
                query, data, order, 0, assignment, used, 0, candidates, budget
            ):
                return dict(assignment)
        return None

    def _connected_order(self, query: LabeledDigraph) -> List[Node]:
        """Order query nodes so each (after the first) touches a prior one."""
        nodes = list(query.nodes())
        if not nodes:
            return []
        order = [max(nodes, key=lambda n: query.out_degree(n) + query.in_degree(n))]
        seen = {order[0]}
        while len(order) < len(nodes):
            extension = next(
                (
                    n
                    for n in nodes
                    if n not in seen
                    and any(p in seen for p in query.neighbors(n))
                ),
                None,
            )
            if extension is None:  # disconnected remainder
                extension = next(n for n in nodes if n not in seen)
            order.append(extension)
            seen.add(extension)
        return order

    def _search(
        self,
        query: LabeledDigraph,
        data: LabeledDigraph,
        order: List[Node],
        index: int,
        assignment: Dict[Node, Node],
        used: Set[Node],
        missing: int,
        candidates: Dict[Node, List[Node]],
        budget: int,
    ) -> bool:
        if index == len(order):
            return True
        self._steps += 1
        if self._steps > self.step_budget:
            return False
        query_node = order[index]
        for data_node in candidates[query_node]:
            if data_node in used:
                continue
            extra = self._missing_edges(query, data, query_node, data_node, assignment)
            if missing + extra > budget:
                continue
            assignment[query_node] = data_node
            used.add(data_node)
            if self._search(
                query, data, order, index + 1, assignment, used,
                missing + extra, candidates, budget,
            ):
                return True
            del assignment[query_node]
            used.discard(data_node)
        return False

    @staticmethod
    def _missing_edges(
        query: LabeledDigraph,
        data: LabeledDigraph,
        query_node: Node,
        data_node: Node,
        assignment: Dict[Node, Node],
    ) -> int:
        count = 0
        for other, image in assignment.items():
            if query.has_edge(query_node, other) and not data.has_edge(
                data_node, image
            ):
                count += 1
            if query.has_edge(other, query_node) and not data.has_edge(
                image, data_node
            ):
                count += 1
        return count


class NagaMatcher:
    """Chi-square neighborhood-significance matcher (NAGA-like).

    For each same-label pair the statistic compares the observed number of
    query-neighbor labels present around the data node against the
    expectation under the data graph's label distribution; seeds expand
    greedily over the query structure.
    """

    name = "NAGA"

    def match(
        self, query: LabeledDigraph, data: LabeledDigraph
    ) -> Optional[Dict[Node, Node]]:
        histogram = data.label_histogram()
        total = max(1, data.num_nodes)
        scores: Dict[Tuple[Node, Node], float] = {}
        for query_node in query.nodes():
            for data_node in data.nodes_with_label(query.label(query_node)):
                scores[(query_node, data_node)] = self._chi_square(
                    query, data, query_node, data_node, histogram, total
                )
        if not scores:
            return None
        ordered = sorted(scores.items(), key=lambda item: (-item[1], repr(item[0])))
        (seed_query, seed_data), _ = ordered[0]
        mapping = {seed_query: seed_data}
        used = {seed_data}
        frontier = [seed_query]
        visited = {seed_query}
        while frontier:
            current = frontier.pop(0)
            anchor = mapping.get(current)
            for neighbor in query.neighbors(current):
                if neighbor in visited:
                    continue
                visited.add(neighbor)
                frontier.append(neighbor)
                options: List[Node] = []
                if anchor is not None:
                    if query.has_edge(current, neighbor):
                        options.extend(data.out_neighbors(anchor))
                    if query.has_edge(neighbor, current):
                        options.extend(data.in_neighbors(anchor))
                best, best_score = None, -1.0
                for option in options:
                    if option in used:
                        continue
                    score = scores.get((neighbor, option))
                    if score is not None and score > best_score:
                        best, best_score = option, score
                if best is not None:
                    mapping[neighbor] = best
                    used.add(best)
        return mapping

    @staticmethod
    def _chi_square(
        query: LabeledDigraph,
        data: LabeledDigraph,
        query_node: Node,
        data_node: Node,
        histogram: Dict,
        total: int,
    ) -> float:
        statistic = 0.0
        data_neighbor_labels = {
            data.label(n) for n in data.neighbors(data_node)
        }
        degree = max(1, len(data.neighbors(data_node)))
        for neighbor in query.neighbors(query_node):
            label = query.label(neighbor)
            expected = degree * histogram.get(label, 0) / total
            observed = 1.0 if label in data_neighbor_labels else 0.0
            if expected > 0:
                statistic += (observed - expected) ** 2 / expected
            elif observed:
                statistic += 1.0
        return statistic


class GFinderMatcher:
    """Candidate-filter + lookup-and-extend matcher (G-Finder-like).

    Candidates must share the label and satisfy a degree lower bound.
    An exact edge-consistent assignment is searched first (G-Finder is
    exact on clean queries); when none exists within the step budget, a
    greedy connectivity-maximising extension produces a partial match.
    The label filter makes it brittle to label noise, as in the paper.
    """

    name = "G-Finder"

    def __init__(self, step_budget: int = 50_000):
        self.step_budget = step_budget
        self._exact_engine = TSpanMatcher(max_missing=0, step_budget=step_budget)

    def match(
        self, query: LabeledDigraph, data: LabeledDigraph
    ) -> Optional[Dict[Node, Node]]:
        exact = self._exact_engine.match(query, data)
        if exact is not None:
            return exact
        candidates: Dict[Node, List[Node]] = {}
        for query_node in query.nodes():
            options = [
                data_node
                for data_node in data.nodes_with_label(query.label(query_node))
                if len(data.neighbors(data_node)) + 1
                >= len(query.neighbors(query_node))
            ]
            candidates[query_node] = options
        start = min(
            query.nodes(),
            key=lambda q: (len(candidates[q]) if candidates[q] else 10**9, repr(q)),
        )
        if not candidates[start]:
            return None
        mapping: Dict[Node, Node] = {start: candidates[start][0]}
        used = {candidates[start][0]}
        frontier = [start]
        visited = {start}
        while frontier:
            current = frontier.pop(0)
            for neighbor in query.neighbors(current):
                if neighbor in visited:
                    continue
                visited.add(neighbor)
                frontier.append(neighbor)
                best, best_score = None, -1.0
                for option in candidates.get(neighbor, ()):
                    if option in used:
                        continue
                    connectivity = sum(
                        1
                        for other, image in mapping.items()
                        if (
                            query.has_edge(neighbor, other)
                            and data.has_edge(option, image)
                        )
                        or (
                            query.has_edge(other, neighbor)
                            and data.has_edge(image, option)
                        )
                    )
                    if connectivity > best_score:
                        best, best_score = option, connectivity
                if best is not None and best_score > 0:
                    mapping[neighbor] = best
                    used.add(best)
        return mapping
