"""FSimX: quantifying approximate simulation on graph data.

This package reproduces "A Framework to Quantify Approximate Simulation on
Graph Data" (ICDE 2021).  It provides:

- :mod:`repro.graph` -- a node-labeled directed graph substrate with
  generators, noise injection and IO;
- :mod:`repro.simulation` -- exact simulation variants (simple,
  degree-preserving, bisimulation, bijective), k-bisimulation and strong
  simulation;
- :mod:`repro.core` -- the FSimX fractional simulation framework
  (Algorithm 1 of the paper) with the label-constrained mapping and
  upper-bound-updating optimizations, plus SimRank / RoleSim / WL-test
  configurations.  Two interchangeable compute backends are provided:
  the dict-based reference engine and a vectorized integer-indexed
  numpy engine with incremental (dirty-pair) iteration, selected via
  ``FSimConfig(backend="auto"|"python"|"numpy")`` (see docs/PERF.md);
- :mod:`repro.streaming` -- incremental score maintenance under graph
  mutations: structured delta capture (``DeltaLog``), plan/compiled
  patching, and ``IncrementalFSim`` sessions that resume the fixed
  point instead of restarting it (bitwise-exact replay or epsilon-
  accurate warm starts; see docs/ARCHITECTURE.md);
- :mod:`repro.apps` -- the paper's three case-study applications
  (pattern matching, node similarity, graph alignment);
- :mod:`repro.datasets` -- scaled-down synthetic emulators of the paper's
  evaluation datasets;
- :mod:`repro.experiments` -- drivers regenerating every table and figure
  of the evaluation section.
"""

from repro.graph import LabeledDigraph
from repro.core import FSimConfig, FSimEngine, FSimResult, fsim, fsim_matrix
from repro.simulation import Variant, maximal_simulation, simulates

__version__ = "1.0.0"

__all__ = [
    "LabeledDigraph",
    "FSimConfig",
    "FSimEngine",
    "FSimResult",
    "fsim",
    "fsim_matrix",
    "Variant",
    "maximal_simulation",
    "simulates",
    "__version__",
]
