"""Scaled-down synthetic emulators of the paper's evaluation datasets.

The paper evaluates on eight public graphs (Table 4) up to 9.7M edges on
a 40-core server with a C++ implementation.  This pure-Python
reproduction substitutes deterministic synthetic emulators that preserve
each dataset's *shape* -- relative size ordering, label-alphabet size,
average degree and degree skew -- at a scale where every experiment runs
on a laptop.  See DESIGN.md ("Paper-said vs. we-built substitutions").
"""

from repro.datasets.synthetic import DatasetSpec, build_dataset
from repro.datasets.registry import (
    DATASET_NAMES,
    dataset_spec,
    load_dataset,
    dataset_table,
)

__all__ = [
    "DatasetSpec",
    "build_dataset",
    "DATASET_NAMES",
    "dataset_spec",
    "load_dataset",
    "dataset_table",
]
