"""Dataset emulator construction.

Each emulator is described by a :class:`DatasetSpec` capturing the
paper-reported characteristics it mimics (Table 4) and the scaled-down
parameters actually generated.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigError
from repro.graph.digraph import LabeledDigraph
from repro.graph.generators import (
    power_law_graph,
    random_graph,
    uniform_labels,
    zipf_labels,
)


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one emulated dataset.

    Attributes
    ----------
    name:
        Dataset key (lowercase paper name).
    num_nodes / num_edges / num_labels:
        Scaled-down generation parameters (scale 1.0).
    skewed_degrees:
        True -> preferential attachment (heavy-tailed in-degree, like JDK
        / GP / ACMCit whose max in-degree dwarfs the average); False ->
        uniform G(n, m).
    skewed_labels:
        True -> Zipf label distribution (real alphabets are skewed).
    paper_nodes / paper_edges / paper_labels:
        The original Table 4 row, for documentation and reporting.
    """

    name: str
    num_nodes: int
    num_edges: int
    num_labels: int
    skewed_degrees: bool
    skewed_labels: bool
    paper_nodes: int
    paper_edges: int
    paper_labels: int

    def scaled(self, scale: float) -> "DatasetSpec":
        """A spec with node/edge counts multiplied by ``scale``."""
        if scale <= 0:
            raise ConfigError(f"scale must be positive, got {scale}")
        nodes = max(10, int(round(self.num_nodes * scale)))
        edges = max(10, int(round(self.num_edges * scale)))
        labels = max(2, min(self.num_labels, nodes // 2))
        return DatasetSpec(
            name=self.name,
            num_nodes=nodes,
            num_edges=edges,
            num_labels=labels,
            skewed_degrees=self.skewed_degrees,
            skewed_labels=self.skewed_labels,
            paper_nodes=self.paper_nodes,
            paper_edges=self.paper_edges,
            paper_labels=self.paper_labels,
        )


def build_dataset(spec: DatasetSpec, seed: int = 0) -> LabeledDigraph:
    """Generate the emulator graph for ``spec`` deterministically."""
    if spec.skewed_labels:
        labels = zipf_labels(spec.num_nodes, spec.num_labels, seed=seed + 1)
    else:
        labels = uniform_labels(spec.num_nodes, spec.num_labels, seed=seed + 1)
    if spec.skewed_degrees:
        edges_per_node = max(1, round(spec.num_edges / spec.num_nodes))
        graph = power_law_graph(
            spec.num_nodes, edges_per_node, labels, seed=seed + 2, name=spec.name
        )
    else:
        capacity = spec.num_nodes * (spec.num_nodes - 1)
        graph = random_graph(
            spec.num_nodes,
            min(spec.num_edges, capacity),
            labels,
            seed=seed + 2,
            name=spec.name,
        )
    return graph
