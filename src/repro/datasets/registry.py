"""The registry of emulated datasets (one per Table 4 row).

Scaled parameters preserve the paper's relative ordering: Yeast is the
smallest, ACMCit the largest; Wiki and JDK are dense (average degree 26 /
23), NELL and GP are sparse (average degree 2); JDK / GP / ACMCit have
heavy-tailed in-degrees; NELL and ACMCit have large skewed label
alphabets.
"""

from __future__ import annotations

from typing import Dict, List

from repro.datasets.synthetic import DatasetSpec, build_dataset
from repro.exceptions import ConfigError
from repro.graph.digraph import LabeledDigraph
from repro.graph.stats import compute_stats

_SPECS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec(
            name="yeast",
            num_nodes=80, num_edges=240, num_labels=13,
            skewed_degrees=False, skewed_labels=False,
            paper_nodes=2_361, paper_edges=7_182, paper_labels=13,
        ),
        DatasetSpec(
            name="cora",
            num_nodes=160, num_edges=640, num_labels=70,
            skewed_degrees=False, skewed_labels=True,
            paper_nodes=23_166, paper_edges=91_500, paper_labels=70,
        ),
        DatasetSpec(
            name="wiki",
            num_nodes=100, num_edges=2_600, num_labels=50,
            skewed_degrees=False, skewed_labels=True,
            paper_nodes=4_592, paper_edges=119_882, paper_labels=120,
        ),
        DatasetSpec(
            name="jdk",
            num_nodes=130, num_edges=3_000, num_labels=41,
            skewed_degrees=True, skewed_labels=True,
            paper_nodes=6_434, paper_edges=150_985, paper_labels=41,
        ),
        DatasetSpec(
            name="nell",
            num_nodes=120, num_edges=240, num_labels=40,
            skewed_degrees=False, skewed_labels=True,
            paper_nodes=75_492, paper_edges=154_213, paper_labels=269,
        ),
        DatasetSpec(
            name="gp",
            num_nodes=260, num_edges=520, num_labels=8,
            skewed_degrees=True, skewed_labels=False,
            paper_nodes=144_879, paper_edges=298_564, paper_labels=8,
        ),
        DatasetSpec(
            name="amazon",
            num_nodes=340, num_edges=1_020, num_labels=82,
            skewed_degrees=False, skewed_labels=True,
            paper_nodes=554_790, paper_edges=1_788_725, paper_labels=82,
        ),
        DatasetSpec(
            name="acmcit",
            num_nodes=420, num_edges=3_200, num_labels=180,
            skewed_degrees=True, skewed_labels=True,
            paper_nodes=1_462_947, paper_edges=9_671_895, paper_labels=72_000,
        ),
    ]
}

#: Dataset names in the paper's (size) order.
DATASET_NAMES: List[str] = [
    "yeast", "cora", "wiki", "jdk", "nell", "gp", "amazon", "acmcit",
]


def dataset_spec(name: str, scale: float = 1.0) -> DatasetSpec:
    """The (optionally rescaled) spec of a named dataset."""
    try:
        spec = _SPECS[name.lower()]
    except KeyError:
        raise ConfigError(
            f"unknown dataset {name!r}; known: {DATASET_NAMES}"
        ) from None
    return spec if scale == 1.0 else spec.scaled(scale)


def load_dataset(name: str, scale: float = 1.0, seed: int = 0) -> LabeledDigraph:
    """Build the emulator graph of a named dataset.

    ``scale`` rescales node/edge counts (e.g. 0.5 for quick tests);
    ``seed`` yields structurally different but statistically matched
    instances.
    """
    return build_dataset(dataset_spec(name, scale), seed=seed)


def dataset_table(scale: float = 1.0, seed: int = 0) -> str:
    """Render the emulated datasets in Table 4's layout (for reports)."""
    lines = ["Emulated dataset statistics (Table 4 shape, scaled):"]
    for name in DATASET_NAMES:
        graph = load_dataset(name, scale=scale, seed=seed)
        lines.append(compute_stats(graph).as_row(name))
    return "\n".join(lines)
