"""Exception hierarchy for the repro package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single except clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GraphError(ReproError):
    """Raised for structurally invalid graph operations."""


class NodeNotFoundError(GraphError, KeyError):
    """Raised when an operation references a node that is not in the graph."""

    def __init__(self, node):
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFoundError(GraphError, KeyError):
    """Raised when an operation references an edge that is not in the graph."""

    def __init__(self, source, target):
        super().__init__(f"edge ({source!r}, {target!r}) is not in the graph")
        self.source = source
        self.target = target


class ConfigError(ReproError, ValueError):
    """Raised when a framework configuration violates a paper constraint."""


class ConvergenceError(ReproError, RuntimeError):
    """Raised when an iterative computation fails to converge in time."""


class ServiceError(ReproError):
    """Raised for invalid requests against the FSim query service."""


class ServiceOverloadedError(ServiceError):
    """Raised when the service's admission control rejects a request."""


class SnapshotError(ServiceError):
    """Raised when a warm snapshot cannot be read or does not match."""
