"""Exception hierarchy for the repro package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single except clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GraphError(ReproError):
    """Raised for structurally invalid graph operations."""


class NodeNotFoundError(GraphError, KeyError):
    """Raised when an operation references a node that is not in the graph."""

    def __init__(self, node):
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFoundError(GraphError, KeyError):
    """Raised when an operation references an edge that is not in the graph."""

    def __init__(self, source, target):
        super().__init__(f"edge ({source!r}, {target!r}) is not in the graph")
        self.source = source
        self.target = target


class ConfigError(ReproError, ValueError):
    """Raised when a framework configuration violates a paper constraint."""


class ConvergenceError(ReproError, RuntimeError):
    """Raised when an iterative computation fails to converge in time."""


class ServiceError(ReproError):
    """Raised for invalid requests against the FSim query service."""


class ServiceOverloadedError(ServiceError):
    """Raised when the service's admission control rejects a request.

    Retryable: the request was never admitted -- back off and resend.
    """


class ServiceConnectionError(ServiceError):
    """Raised for transport-level failures talking to the service
    (connect/read timeouts, resets, a closed connection).

    Retryable: the outcome of an in-flight request is unknown, but
    queries are idempotent and mutations are deduplicated by request
    id, so resending is always safe.
    """


class ServiceRetryError(ServiceError):
    """Raised when a self-healing client exhausts its retry budget.

    Terminal by construction (the retryable cause is chained as
    ``__cause__``); callers treat it as fatal.
    """


class SnapshotError(ServiceError):
    """Raised when a warm snapshot cannot be read or does not match."""


class WalError(ServiceError):
    """Raised when the write-ahead log cannot be written or parsed."""


class WalCorruptionError(WalError):
    """Raised on mid-file WAL corruption (valid records after a bad
    one).  A torn *final* record is repaired silently; a hole in the
    middle of the history is not recoverable by replay and needs
    operator intervention."""
