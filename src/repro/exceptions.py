"""Exception hierarchy for the repro package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single except clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GraphError(ReproError):
    """Raised for structurally invalid graph operations."""


class NodeNotFoundError(GraphError, KeyError):
    """Raised when an operation references a node that is not in the graph."""

    def __init__(self, node):
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFoundError(GraphError, KeyError):
    """Raised when an operation references an edge that is not in the graph."""

    def __init__(self, source, target):
        super().__init__(f"edge ({source!r}, {target!r}) is not in the graph")
        self.source = source
        self.target = target


class ConfigError(ReproError, ValueError):
    """Raised when a framework configuration violates a paper constraint."""


class ConvergenceError(ReproError, RuntimeError):
    """Raised when an iterative computation fails to converge in time."""


class ServiceError(ReproError):
    """Raised for invalid requests against the FSim query service."""


class ServiceOverloadedError(ServiceError):
    """Raised when the service's admission control rejects a request.

    Retryable: the request was never admitted -- back off and resend.
    """


class ServiceConnectionError(ServiceError):
    """Raised for transport-level failures talking to the service
    (connect/read timeouts, resets, a closed connection).

    Retryable: the outcome of an in-flight request is unknown, but
    queries are idempotent and mutations are deduplicated by request
    id, so resending is always safe.
    """


class ServiceRetryError(ServiceError):
    """Raised when a self-healing client exhausts its retry budget.

    Terminal by construction (the retryable cause is chained as
    ``__cause__``); callers treat it as fatal.
    """


class ReplicaReadOnlyError(ServiceError):
    """Raised when a mutation reaches a read replica.

    Carries the primary's advertised address so a replica-set client
    can redirect the write instead of failing it.
    """

    def __init__(self, primary=None):
        self.primary = primary
        where = f"; redirect writes to the primary at {primary}" \
            if primary else ""
        super().__init__(f"this server is a read replica{where}")


class ReplicaLaggingError(ServiceError):
    """Raised when a read's bounded-staleness contract cannot be met.

    A replica rejects a read carrying ``max_lag`` / ``max_lag_seconds``
    bounds it currently violates, rather than silently serving stale
    scores; the client retries against the primary.  ``lag_records``
    and ``lag_seconds`` carry the observed lag (``None`` = unknown,
    e.g. never connected).
    """

    def __init__(self, message, lag_records=None, lag_seconds=None):
        super().__init__(message)
        self.lag_records = lag_records
        self.lag_seconds = lag_seconds


class SnapshotError(ServiceError):
    """Raised when a warm snapshot cannot be read or does not match."""


class WalError(ServiceError):
    """Raised when the write-ahead log cannot be written or parsed."""


class WalCorruptionError(WalError):
    """Raised on mid-file WAL corruption (valid records after a bad
    one).  A torn *final* record is repaired silently; a hole in the
    middle of the history is not recoverable by replay and needs
    operator intervention."""


class WalCompactedError(WalError):
    """Raised when a WAL reader asks for a suffix that compaction has
    already folded into snapshots.  The typed signal is the reader's
    cue to re-bootstrap from a snapshot instead of replaying records
    -- it is never a data-loss condition.  ``first_seq`` is the oldest
    sequence number still present in the log."""

    def __init__(self, message, first_seq=0):
        super().__init__(message)
        self.first_seq = int(first_seq)
