"""Quickstart: exact and fractional chi-simulation in a few lines.

Run with:  python examples/quickstart.py
"""

from repro import LabeledDigraph, Variant, fsim_matrix, maximal_simulation
from repro.graph import figure1_graphs


def build_tiny_example():
    """Two parent nodes whose children differ by one label."""
    graph = LabeledDigraph("tiny")
    graph.add_node("u", "person")
    graph.add_node("v", "person")
    for child, label in (("u1", "cat"), ("u2", "dog")):
        graph.add_node(child, label)
        graph.add_edge("u", child)
    for child, label in (("v1", "cat"), ("v2", "fox")):
        graph.add_node(child, label)
        graph.add_edge("v", child)
    return graph


def main():
    # ------------------------------------------------------------------
    # 1. Exact simulation is a yes-or-no relation ...
    # ------------------------------------------------------------------
    graph = build_tiny_example()
    relation = maximal_simulation(graph, graph, Variant.S)
    print("u simulated by v?", ("u", "v") in relation)  # False: fox != dog

    # ------------------------------------------------------------------
    # 2. ... while FSim quantifies *how close* the pair is to simulating.
    # ------------------------------------------------------------------
    result = fsim_matrix(graph, graph, Variant.S, label_function="indicator")
    print(f"FSims(u, v) = {result.score('u', 'v'):.3f}  (close, not 1.0)")
    print(f"FSims(u, u) = {result.score('u', 'u'):.3f}  (exact => 1.0)")

    # ------------------------------------------------------------------
    # 3. The paper's Figure 1: all four variants on the running example.
    # ------------------------------------------------------------------
    pattern, data = figure1_graphs()
    print("\nFigure 1 example -- is u chi-simulated by each candidate?")
    header = f"{'variant':>8}" + "".join(f"{v:>12}" for v in ("v1", "v2", "v3", "v4"))
    print(header)
    for variant in (Variant.S, Variant.DP, Variant.B, Variant.BJ):
        scores = fsim_matrix(
            pattern, data, variant,
            label_function="indicator", matching_mode="exact",
        )
        cells = []
        for candidate in ("v1", "v2", "v3", "v4"):
            score = scores.score("u", candidate)
            mark = "yes" if scores.is_simulated("u", candidate) else "no"
            cells.append(f"{mark} ({score:.2f})")
        print(f"{variant.value:>8}" + "".join(f"{c:>12}" for c in cells))


if __name__ == "__main__":
    main()
