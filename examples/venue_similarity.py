"""Venue similarity on a DBIS-like bibliographic network (Tables 7-8).

Finds the venues most similar to WWW with fractional bijective
simulation, surfacing the duplicate records WWW1-3 that count-based
meta-path measures miss.

Run with:  python examples/venue_similarity.py
"""

from repro.apps.similarity import (
    FSimVenueSimilarity,
    PathSim,
    generate_dbis,
    rank_venues,
    relevance,
)
from repro.apps.similarity.baselines import score_all_venues
from repro.simulation import Variant


def main():
    graph, meta = generate_dbis(seed=0)
    venues = meta.venues()
    print(
        f"DBIS-like network: {graph.num_nodes} nodes, {graph.num_edges} "
        f"edges, {len(venues)} venue records "
        f"(incl. duplicates {sorted(meta.duplicates)})"
    )

    pathsim = PathSim(graph)
    fsim = FSimVenueSimilarity(graph, Variant.BJ)

    print("\nTop-5 venues similar to WWW:")
    print(f"{'rank':>4} {'PathSim':>12} {'FSimbj':>12}")
    path_top = rank_venues(score_all_venues(pathsim, "WWW", venues), "WWW", 5)
    fsim_top = rank_venues(fsim.scores_for("WWW", venues), "WWW", 5)
    for rank, (a, b) in enumerate(zip(path_top, fsim_top), start=1):
        print(f"{rank:>4} {a:>12} {b:>12}")

    duplicates = [v for v in fsim_top if meta.is_duplicate_of(v, "WWW")]
    print(
        f"\nFSimbj surfaces {len(duplicates)} duplicate records of WWW "
        f"({', '.join(duplicates)}); PathSim finds "
        f"{sum(1 for v in path_top if meta.is_duplicate_of(v, 'WWW'))}."
    )

    print("\nRelevance-annotated FSimbj ranking (2=very, 1=some, 0=non):")
    for venue in fsim_top:
        print(f"  {venue:>10}: score={fsim.similarity('WWW', venue):.3f} "
              f"relevance={relevance(meta, 'WWW', venue)}")


if __name__ == "__main__":
    main()
