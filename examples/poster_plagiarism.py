"""The paper's motivating example (Figure 2): poster plagiarism detection.

A candidate poster P differs from an existing poster P1 only in the font
and the font style.  Exact simulation says a flat "no" for every poster
in the database; fractional simulation surfaces P1 as a near-miss.

Run with:  python examples/poster_plagiarism.py
"""

from repro import Variant, fsim_matrix, maximal_simulation
from repro.graph import figure2_data_posters, figure2_query_poster


def main():
    query = figure2_query_poster()
    database = figure2_data_posters()

    print("Candidate poster design elements:")
    for element in query.out_neighbors("P"):
        print(f"  - {element}")

    relation = maximal_simulation(query, database, Variant.S)
    print("\nExact simulation verdicts (the coarse yes-or-no semantics):")
    for poster in ("P1", "P2", "P3"):
        verdict = "simulated" if ("P", poster) in relation else "NOT simulated"
        print(f"  P vs {poster}: {verdict}")

    result = fsim_matrix(query, database, Variant.S, label_function="indicator")
    print("\nFractional s-simulation scores (how *close* each poster is):")
    ranked = sorted(
        ("P1", "P2", "P3"), key=lambda p: -result.score("P", p)
    )
    for poster in ranked:
        print(f"  FSims(P, {poster}) = {result.score('P', poster):.3f}")
    print(
        f"\n=> {ranked[0]} is flagged as the likely source "
        "(highest partial simulation), exactly the case exact "
        "simulation cannot catch."
    )


if __name__ == "__main__":
    main()
