"""Aligning evolving graph versions (the Table 9 case study).

Three versions of a bio-like graph drift apart through edge churn and
node arrivals; node ids are the ground truth.  Exact bisimulation
aligns nothing, k-bisimulation aligns coarsely, FSimb nails most of it.

Run with:  python examples/rdf_alignment.py
"""

from repro.apps.alignment import (
    EWSAligner,
    ExactBisimulationAligner,
    FSimAligner,
    KBisimulationAligner,
    alignment_f1,
    generate_bio_versions,
)
from repro.graph.stats import compute_stats
from repro.simulation import Variant


def main():
    graph1, graph2, graph3 = generate_bio_versions(seed=0)
    for graph in (graph1, graph2, graph3):
        print(compute_stats(graph).as_row(graph.name))

    aligners = [
        ExactBisimulationAligner(),
        KBisimulationAligner(2),
        EWSAligner(),
        FSimAligner(Variant.B),
        FSimAligner(Variant.BJ),
    ]
    print(f"\n{'aligner':>10} {'G1-G2':>8} {'G1-G3':>8}")
    for aligner in aligners:
        f1_12 = alignment_f1(aligner.align(graph1, graph2), graph1, graph2)
        f1_13 = alignment_f1(aligner.align(graph1, graph3), graph1, graph3)
        print(f"{aligner.name:>10} {100 * f1_12:>7.1f}% {100 * f1_13:>7.1f}%")

    print(
        "\nExact bisimulation scores 0% the moment the versions drift -- "
        "fractional simulation keeps aligning (the paper's Table 9)."
    )


if __name__ == "__main__":
    main()
