"""Certified top-k similarity search (the paper's named future work).

The conclusion of the paper plans "efficient techniques to process top-k
queries based on FSimX".  This example uses the contraction bound of
Theorem 1 to stop iterating as soon as the top-k set is provably final.

Run with:  python examples/topk_search.py
"""

from repro.core import FSimConfig, TopKSearch, fsim_matrix
from repro.datasets import load_dataset
from repro.simulation import Variant


def main():
    graph = load_dataset("nell", scale=0.8)
    config = FSimConfig(
        variant=Variant.BJ, label_function="indicator", epsilon=1e-4
    )

    full = fsim_matrix(graph, graph, config=config)
    print(
        f"Full convergence: {full.iterations} iterations over "
        f"{full.num_candidates} candidate pairs."
    )

    # All eight queries share one iteration loop (and one compiled
    # arena on the numpy backend): a batch costs about one computation.
    search = TopKSearch(graph, graph, config)
    results = search.search_many(graph.nodes()[:8], k=3)
    best_result, best_saved = None, -1
    for result in results:
        saved = full.iterations - result.iterations
        if result.certified and saved > best_saved:
            best_result, best_saved = result, saved

    result = best_result
    print(
        f"\nTop-3 partners of node {result.query} "
        f"(certified={result.certified}, {result.iterations} iterations):"
    )
    for rank, (node, score) in enumerate(result.partners, start=1):
        print(f"  {rank}. node {node:<6} score {score:.4f}")
    print(
        f"\nEarly termination saved {best_saved} iteration(s) versus full "
        "convergence while certifying the same top-k set -- the "
        "contraction bound separates the leaders long before every score "
        "settles."
    )


if __name__ == "__main__":
    main()
