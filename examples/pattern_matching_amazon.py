"""Approximate pattern matching on the Amazon-like co-purchase graph.

Extracts a query from the data graph, injects label noise (a mislabelled
product category), and compares exact strong simulation against the
FSim seed-and-expand matcher -- the Table 6 story on one query.

Run with:  python examples/pattern_matching_amazon.py
"""

from repro.apps.pattern_matching import (
    FSimMatcher,
    Scenario,
    StrongSimulationMatcher,
    TSpanMatcher,
    f1_score,
    generate_query,
)
from repro.datasets import load_dataset
from repro.graph.stats import compute_stats
from repro.simulation import Variant


def main():
    data = load_dataset("amazon")
    print("Data graph:", compute_stats(data).as_row("amazon-like"))

    for scenario in (Scenario.EXACT, Scenario.NOISY_L):
        query = generate_query(data, size=7, scenario=scenario, seed=11)
        print(f"\n--- scenario: {scenario.value} "
              f"({query.graph.num_nodes} nodes, {query.graph.num_edges} edges)")
        for matcher in (
            StrongSimulationMatcher(),
            TSpanMatcher(1),
            FSimMatcher(Variant.S),
            FSimMatcher(Variant.DP),
        ):
            match = matcher.match(query.graph, data)
            score = f1_score(match, query.truth)
            status = f"F1 = {score:.2f}" if match else "no result"
            print(f"  {matcher.name:>12}: {status}")
    print(
        "\nUnder label noise the exact matchers lose the query entirely "
        "while FSim still locates the region (strength S1 of the paper)."
    )


if __name__ == "__main__":
    main()
