"""Tests for the experiment drivers (tiny scales for speed)."""

import pytest

from repro.experiments import common, fig5, fig7, fig8, table2, table5
from repro.experiments.common import ExperimentOutput, pearson


class TestCommon:
    def test_pearson_perfect(self):
        assert pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_pearson_inverse(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_pearson_matches_scipy(self):
        import random

        from scipy.stats import pearsonr

        rng = random.Random(3)
        xs = [rng.random() for _ in range(50)]
        ys = [rng.random() for _ in range(50)]
        assert pearson(xs, ys) == pytest.approx(pearsonr(xs, ys)[0], abs=1e-12)

    def test_pearson_constant_vectors(self):
        assert pearson([1, 1, 1], [1, 1, 1]) == 1.0
        assert pearson([1, 1, 1], [1, 2, 3]) == 0.0

    def test_pearson_length_mismatch(self):
        with pytest.raises(ValueError):
            pearson([1], [1, 2])

    def test_render_layout(self):
        output = ExperimentOutput(
            name="demo", headers=["a", "b"], rows=[["1", "22"]], notes="n"
        )
        text = output.render()
        assert "== demo ==" in text
        assert "22" in text
        assert text.endswith("n")

    def test_timed(self):
        elapsed, value = common.timed(lambda: 41 + 1)
        assert value == 42
        assert elapsed >= 0.0


class TestTable2:
    def test_pattern_matches_paper(self):
        output = table2.run()
        # every Y cell is 1.00 and every x cell is below 1
        for (variant, candidate), (simulated, score) in output.data.items():
            if simulated:
                assert score == pytest.approx(1.0)
            else:
                assert score < 1.0
        assert len(output.rows) == 4


class TestSweeps:
    def test_table5_small(self):
        output = table5.run(scale=0.3)
        assert len(output.rows) == 3  # three L-function pairs
        for coefficient in output.data.values():
            assert -1.0 <= coefficient <= 1.0

    def test_fig5_clean_is_perfect(self):
        output = fig5.run(scale=0.3)
        assert output.data[("structural", 0.0, 0.0)] == pytest.approx(1.0)
        assert output.data[("label", 0.0, 1.0)] == pytest.approx(1.0)

    def test_fig7_pairs_monotone(self):
        output = fig7.run(scale=0.3)
        counts = [output.data[(theta, "s")][1] for theta in fig7.THETAS]
        assert all(b <= a for a, b in zip(counts, counts[1:]))

    def test_fig8_subset(self):
        output = fig8.run(scale=0.3, datasets=("yeast", "nell"))
        assert output.data[("yeast", "FSimbj")] is not None
        assert output.data[("nell", "FSimbj{ub,theta=1}")] is not None
        assert len(output.rows) == 2
