"""Hypothesis property tests for the core invariants (DESIGN.md section 6)."""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import FSimConfig, FSimEngine
from repro.core.engine import is_one
from repro.graph import LabeledDigraph
from repro.simulation import Variant, maximal_simulation
from repro.simulation.matching import (
    exact_max_weight_matching,
    greedy_max_weight_matching,
    hopcroft_karp,
    matching_weight,
)

VARIANTS = [Variant.S, Variant.DP, Variant.B, Variant.BJ]

FAST = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def labeled_digraphs(draw, max_nodes=7, max_labels=3):
    """Small random labeled digraphs."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    labels = draw(
        st.lists(
            st.integers(min_value=0, max_value=max_labels - 1),
            min_size=n, max_size=n,
        )
    )
    graph = LabeledDigraph("hypo")
    for i in range(n):
        graph.add_node(i, f"L{labels[i]}")
    possible = [(s, t) for s in range(n) for t in range(n) if s != t]
    if possible:
        chosen = draw(st.lists(st.sampled_from(possible), max_size=3 * n, unique=True))
        for s, t in chosen:
            graph.add_edge(s, t)
    return graph


@st.composite
def weight_maps(draw):
    lefts = draw(st.integers(min_value=1, max_value=5))
    rights = draw(st.integers(min_value=1, max_value=5))
    weights = {}
    for i in range(lefts):
        for j in range(rights):
            if draw(st.booleans()):
                weights[(i, j)] = draw(
                    st.floats(min_value=0.01, max_value=1.0, allow_nan=False)
                )
    return weights


class TestMatchingProperties:
    @given(weights=weight_maps())
    @FAST
    def test_greedy_half_approximation(self, weights):
        if not weights:
            return
        greedy = matching_weight(greedy_max_weight_matching(weights), weights)
        exact = matching_weight(exact_max_weight_matching(weights), weights)
        assert greedy >= 0.5 * exact - 1e-9
        assert greedy <= exact + 1e-9

    @given(weights=weight_maps())
    @FAST
    def test_matchings_are_injective(self, weights):
        for algorithm in (greedy_max_weight_matching, exact_max_weight_matching):
            matching = algorithm(weights)
            assert len(set(matching.values())) == len(matching)

    @given(weights=weight_maps())
    @FAST
    def test_hopcroft_karp_bounds(self, weights):
        if not weights:
            return
        lefts = sorted({i for i, _ in weights})
        rights = sorted({j for _, j in weights})
        adjacency = [
            [rights.index(j) for (i2, j) in weights if i2 == i] for i in lefts
        ]
        size, match_left, match_right = hopcroft_karp(
            len(lefts), len(rights), adjacency
        )
        assert 0 <= size <= min(len(lefts), len(rights))
        assert sum(1 for m in match_left if m != -1) == size
        assert sum(1 for m in match_right if m != -1) == size


class TestSimulationProperties:
    @given(g=labeled_digraphs())
    @FAST
    def test_reflexive_on_self(self, g):
        for variant in VARIANTS:
            relation = maximal_simulation(g, g, variant)
            for node in g.nodes():
                assert (node, node) in relation

    @given(g1=labeled_digraphs(max_nodes=5), g2=labeled_digraphs(max_nodes=5))
    @FAST
    def test_strictness_hierarchy(self, g1, g2):
        relations = {
            variant: set(maximal_simulation(g1, g2, variant).pairs())
            for variant in VARIANTS
        }
        assert relations[Variant.BJ] <= relations[Variant.DP]
        assert relations[Variant.BJ] <= relations[Variant.B]
        assert relations[Variant.DP] <= relations[Variant.S]
        assert relations[Variant.B] <= relations[Variant.S]

    @given(g1=labeled_digraphs(max_nodes=5), g2=labeled_digraphs(max_nodes=5))
    @FAST
    def test_converse_invariance(self, g1, g2):
        for variant in (Variant.B, Variant.BJ):
            forward = set(maximal_simulation(g1, g2, variant).pairs())
            backward = set(maximal_simulation(g2, g1, variant).pairs())
            assert forward == {(u, v) for v, u in backward}


class TestFrameworkProperties:
    @given(g=labeled_digraphs(max_nodes=6))
    @FAST
    def test_p1_and_p2(self, g):
        for variant in VARIANTS:
            cfg = FSimConfig(
                variant=variant,
                label_function="indicator",
                matching_mode="exact",
            )
            result = FSimEngine(g, g, cfg).run()
            exact = maximal_simulation(g, g, variant)
            for pair, value in result.scores.items():
                assert 0.0 <= value <= 1.0
                assert is_one(value) == (pair in exact), (variant, pair)

    @given(g=labeled_digraphs(max_nodes=6))
    @FAST
    def test_p3_symmetry(self, g):
        for variant in (Variant.B, Variant.BJ):
            cfg = FSimConfig(
                variant=variant,
                label_function="indicator",
                matching_mode="exact",
            )
            result = FSimEngine(g, g, cfg).run()
            for (u, v), value in result.scores.items():
                assert math.isclose(value, result.score(v, u), abs_tol=1e-9)

    @given(g=labeled_digraphs(max_nodes=6))
    @FAST
    def test_contraction(self, g):
        cfg = FSimConfig(
            variant=Variant.S,
            label_function="indicator",
            matching_mode="exact",
            epsilon=1e-9,
        )
        result = FSimEngine(g, g, cfg).run()
        for before, after in zip(result.deltas, result.deltas[1:]):
            assert after <= 0.8 * before + 1e-12
