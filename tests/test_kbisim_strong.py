"""Tests for k-bisimulation and strong simulation."""

import pytest

from repro.graph import from_edges, path_graph
from repro.graph.generators import cycle_graph, random_graph, uniform_labels
from repro.simulation import (
    kbisimilar,
    kbisimulation_partition,
    kbisimulation_signatures,
    strong_simulation,
    strong_simulation_match,
)


class TestKBisimulation:
    def test_k0_is_label_partition(self, medium_random_graph):
        g = medium_random_graph
        partition = kbisimulation_partition(g, 0)
        for u in g.nodes():
            for v in g.nodes():
                same_block = partition[u] == partition[v]
                assert same_block == (g.label(u) == g.label(v))

    def test_refinement_monotone(self, medium_random_graph):
        g = medium_random_graph
        rounds = kbisimulation_signatures(g, 4)
        for k in range(1, 5):
            blocks_prev = len(set(rounds[k - 1].values()))
            blocks_now = len(set(rounds[k].values()))
            assert blocks_now >= blocks_prev
            # refinement: equal sig_k implies equal sig_{k-1}
            for u in g.nodes():
                for v in g.nodes():
                    if rounds[k][u] == rounds[k][v]:
                        assert rounds[k - 1][u] == rounds[k - 1][v]

    def test_path_positions_distinguished(self):
        g = path_graph(4)
        # distance-to-sink differs, so deep signatures split the path.
        assert kbisimilar(g, 0, 1, 0)
        assert not kbisimilar(g, 0, 3, 1)  # 3 has no out-neighbor
        assert not kbisimilar(g, 0, 2, 2)
        assert not kbisimilar(g, 0, 1, 3)

    def test_cycle_uniform(self):
        g = cycle_graph(6)
        for k in range(4):
            assert kbisimilar(g, 0, 3, k)

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            kbisimulation_signatures(path_graph(2), -1)


class TestStrongSimulation:
    def test_exact_query_matches(self, medium_random_graph):
        from repro.graph.subgraph import extract_connected_subgraph

        query = extract_connected_subgraph(medium_random_graph, 4, seed=3)
        matches = strong_simulation(query, medium_random_graph)
        assert matches, "a verbatim subquery must match its own graph"
        # ground-truth nodes should appear in at least one match
        covered = set()
        for match in matches:
            covered |= set(match.matched_data_nodes())
        assert set(query.nodes()) & covered

    def test_no_match_for_foreign_labels(self, medium_random_graph):
        query = from_edges([("a", "b")], {"a": "nope1", "b": "nope2"})
        assert strong_simulation(query, medium_random_graph) == []

    def test_single_center(self):
        data = from_edges(
            [("x", "y"), ("y", "z")], {"x": "A", "y": "B", "z": "C"}
        )
        query = from_edges([("q1", "q2")], {"q1": "A", "q2": "B"})
        match = strong_simulation_match(query, data, "x")
        assert match is not None
        assert match.center == "x"
        assert "x" in match.matched_data_nodes()

    def test_center_must_participate(self):
        data = from_edges(
            [("x", "y")], {"x": "A", "y": "B", "lonely": "A"}
        )
        query = from_edges([("q1", "q2")], {"q1": "A", "q2": "B"})
        assert strong_simulation_match(query, data, "lonely") is None

    def test_all_query_nodes_must_be_covered(self):
        data = from_edges([("x", "y")], {"x": "A", "y": "B"})
        query = from_edges(
            [("q1", "q2"), ("q1", "q3")],
            {"q1": "A", "q2": "B", "q3": "C"},
        )
        assert strong_simulation_match(query, data, "x") is None

    def test_max_matches_early_stop(self):
        data = random_graph(20, 40, uniform_labels(20, 1, 7), seed=8)
        query = path_graph(2, labels=["L0", "L0"])
        limited = strong_simulation(query, data, max_matches=2)
        assert len(limited) <= 2
