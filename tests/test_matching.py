"""Tests for the bipartite matching substrate."""

import random

import pytest

from repro.simulation.matching import (
    exact_max_weight_matching,
    greedy_max_weight_matching,
    has_perfect_matching,
    has_saturating_matching,
    hopcroft_karp,
    matching_weight,
)


class TestHopcroftKarp:
    def test_perfect_on_complete(self):
        adjacency = [[0, 1, 2], [0, 1, 2], [0, 1, 2]]
        size, match_left, match_right = hopcroft_karp(3, 3, adjacency)
        assert size == 3
        assert sorted(match_left) == [0, 1, 2]
        assert sorted(match_right) == [0, 1, 2]

    def test_augmenting_path_needed(self):
        # Greedy alone would match 0->0 and block 1; HK must augment.
        adjacency = [[0], [0, 1]]
        size, _, _ = hopcroft_karp(2, 2, adjacency)
        assert size == 2

    def test_no_edges(self):
        size, match_left, _ = hopcroft_karp(2, 2, [[], []])
        assert size == 0
        assert match_left == [-1, -1]

    def test_matches_networkx_on_random_instances(self):
        import networkx as nx

        rng = random.Random(13)
        for trial in range(20):
            left, right = rng.randint(1, 8), rng.randint(1, 8)
            adjacency = [
                [j for j in range(right) if rng.random() < 0.4] for i in range(left)
            ]
            size, _, _ = hopcroft_karp(left, right, adjacency)
            bip = nx.Graph()
            bip.add_nodes_from((("l", i) for i in range(left)), bipartite=0)
            bip.add_nodes_from((("r", j) for j in range(right)), bipartite=1)
            for i, row in enumerate(adjacency):
                for j in row:
                    bip.add_edge(("l", i), ("r", j))
            reference = nx.algorithms.bipartite.maximum_matching(
                bip, top_nodes=[("l", i) for i in range(left)]
            )
            assert size == len(reference) // 2, f"trial {trial}"


class TestSaturation:
    def test_saturating(self):
        assert has_saturating_matching([[0], [1]], 2)

    def test_not_saturating_conflict(self):
        assert not has_saturating_matching([[0], [0]], 1)

    def test_empty_left_trivially_saturated(self):
        assert has_saturating_matching([], 5)

    def test_left_larger_than_right(self):
        assert not has_saturating_matching([[0], [0], [0]], 1)

    def test_isolated_left_vertex(self):
        assert not has_saturating_matching([[0], []], 2)

    def test_perfect_requires_equal_sizes(self):
        assert not has_perfect_matching([[0], [0, 1]], 3)
        assert has_perfect_matching([[0, 1], [0]], 2)


class TestGreedyWeighted:
    def test_picks_heaviest_first(self):
        weights = {("a", "x"): 0.9, ("a", "y"): 0.5, ("b", "x"): 0.8}
        matching = greedy_max_weight_matching(weights)
        assert matching["a"] == "x"
        assert matching.get("b") == "y" if ("b", "y") in weights else "b" not in matching

    def test_deterministic_tie_break(self):
        weights = {("a", "x"): 1.0, ("a", "y"): 1.0, ("b", "x"): 1.0}
        assert greedy_max_weight_matching(weights) == greedy_max_weight_matching(
            weights
        )

    def test_greedy_is_half_approximate(self):
        rng = random.Random(29)
        for _ in range(30):
            weights = {
                (i, j): rng.random()
                for i in range(rng.randint(1, 6))
                for j in range(rng.randint(1, 6))
                if rng.random() < 0.7
            }
            if not weights:
                continue
            greedy = matching_weight(greedy_max_weight_matching(weights), weights)
            exact = matching_weight(exact_max_weight_matching(weights), weights)
            assert greedy >= 0.5 * exact - 1e-12
            assert greedy <= exact + 1e-12


class TestExactWeighted:
    def test_beats_greedy_on_crossing_instance(self):
        # Greedy takes (a, x) and is stuck with (b, y)=0; exact crosses.
        weights = {("a", "x"): 1.0, ("a", "y"): 0.9, ("b", "x"): 0.9}
        exact = exact_max_weight_matching(weights)
        assert matching_weight(exact, weights) == pytest.approx(1.8)

    def test_empty(self):
        assert exact_max_weight_matching({}) == {}

    def test_injective(self):
        weights = {(i, j): 1.0 for i in range(4) for j in range(3)}
        matching = exact_max_weight_matching(weights)
        assert len(set(matching.values())) == len(matching)
        assert len(matching) == 3
