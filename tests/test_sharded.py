"""Tests for the persistent sharded runtime (repro.runtime.sharded).

The load-bearing contract is **bitwise parity**: partitioning the pair
space, pinning each shard to a worker for the session's lifetime and
exchanging only boundary ("halo") scores per Jacobi iteration must
reproduce the unsharded engine's ``FSimResult`` exactly -- scores,
iteration count, per-iteration deltas, convergence flag.  Plus the
resource story the sharding exists for: per-iteration cross-process
traffic is O(boundary pairs) rather than O(arena), structural patches
ship as O(delta) journals, and the executor registry never reclaims a
pool whose workers own live arena shards.
"""

import socket

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.compile import compile_fsim
from repro.core.config import FSimConfig
from repro.core.engine import FSimEngine
from repro.core.partition import compute_halo, partition_pairs
from repro.core.topk import TopKSearch
from repro.core.vectorized import VectorizedFSimEngine
from repro.exceptions import ConfigError
from repro.graph.generators import random_graph, uniform_labels
from repro.obs import metrics
from repro.obs.profiling import PHASE_HISTOGRAM
from repro.runtime import (
    SharedMemoryExecutor,
    evict_idle_executors,
    get_executor,
    shutdown_all,
    shutdown_executors,
)
from repro.runtime import executor as executor_module
from repro.runtime import sharded as sharded_module
from repro.runtime.sharded import (
    HALO_BYTES_PER_PAIR,
    InProcessShardRunner,
    ShardedSweepRuntime,
    open_sharded_runtime,
    run_sharded,
)
from repro.service import ClientPool, GraphStore, ServerThread
from repro.service.client import ServiceConnectionError
from repro.simulation import Variant
from repro.streaming import IncrementalFSim

VARIANTS = [Variant.S, Variant.B, Variant.DP, Variant.BJ, Variant.CROSS]


def make_config(variant=Variant.DP, **overrides):
    base = dict(variant=variant, label_function="indicator",
                theta=0.0, backend="numpy")
    base.update(overrides)
    return FSimConfig(**base)


def make_pair(seed=7, n1=45, m1=180, n2=40, m2=160, labels=5):
    g1 = random_graph(n1, m1, uniform_labels(n1, labels, seed=seed),
                      seed=seed + 1)
    g2 = random_graph(n2, m2, uniform_labels(n2, labels, seed=seed + 2),
                      seed=seed + 3)
    return g1, g2


def assert_bitwise(ref, got):
    """(scores, iterations, converged, deltas) tuples bitwise equal."""
    ref_scores, ref_iter, ref_conv, ref_deltas = ref
    got_scores, got_iter, got_conv, got_deltas = got
    assert got_iter == ref_iter
    assert got_conv == ref_conv
    assert got_deltas == ref_deltas  # exact float equality, on purpose
    np.testing.assert_array_equal(np.asarray(got_scores),
                                  np.asarray(ref_scores))


@pytest.fixture
def low_threshold(monkeypatch):
    """Drop the min-updatable gate so small test graphs actually shard.

    ``open_sharded_runtime``'s default keeps tiny workloads unsharded
    (per-iteration dispatch would dominate); tests exercise the sharded
    path itself, so they route every call through ``min_updatable=1``.
    The engine/top-k/streaming layers all resolve the factory through
    the module attribute at call time, so one patch covers them all.
    """
    orig = sharded_module.open_sharded_runtime

    def _open(compiled, shards, tolerance=0.0, executor=None,
              min_updatable=None):
        return orig(compiled, shards, tolerance=tolerance,
                    executor=executor, min_updatable=1)

    monkeypatch.setattr(sharded_module, "open_sharded_runtime", _open)
    return _open


# ----------------------------------------------------------------------
# partition invariants
# ----------------------------------------------------------------------
class TestPartition:
    @pytest.mark.parametrize("shards", [2, 3, 5])
    def test_positions_are_a_disjoint_cover(self, shards):
        g1, g2 = make_pair()
        compiled = compile_fsim(g1, g2, make_config())
        partition = partition_pairs(compiled, shards)
        assert partition.shards == shards
        merged = np.concatenate(partition.positions)
        assert len(merged) == compiled.num_updatable
        np.testing.assert_array_equal(np.sort(merged),
                                      np.arange(compiled.num_updatable))
        for shard, positions in enumerate(partition.positions):
            np.testing.assert_array_equal(partition.owner[positions], shard)

    def test_halo_is_the_cross_shard_read_set(self):
        g1, g2 = make_pair(seed=11)
        compiled = compile_fsim(g1, g2, make_config(variant=Variant.B))
        partition = partition_pairs(compiled, 3)
        halo_ids, halo_owner, cross_reads = compute_halo(
            compiled, partition.owner, partition.arena_owner
        )
        np.testing.assert_array_equal(halo_ids, partition.halo_ids)
        # Every halo pair is updatable and owned by the shard the owner
        # map says (exports write disjoint slices of the halo buffer).
        np.testing.assert_array_equal(
            partition.arena_owner[halo_ids], halo_owner
        )
        assert np.all(halo_owner >= 0)
        assert partition.stats["boundary_pairs"] == len(halo_ids)
        assert partition.stats["cross_reads"] == cross_reads
        # The partitioner's whole point: the boundary is a strict
        # subset of the arena.
        assert len(halo_ids) < compiled.num_updatable

    def test_shard_count_is_clamped_to_updatable_rows(self):
        g1 = random_graph(6, 10, uniform_labels(6, 2, seed=1), seed=2)
        compiled = compile_fsim(g1, g1, make_config(variant=Variant.S))
        partition = partition_pairs(compiled, 64)
        assert partition.shards <= max(compiled.num_updatable, 1)
        merged = np.concatenate(partition.positions)
        np.testing.assert_array_equal(np.sort(merged),
                                      np.arange(compiled.num_updatable))


# ----------------------------------------------------------------------
# in-process protocol parity (deterministic + property)
# ----------------------------------------------------------------------
class TestInProcessParity:
    @pytest.mark.parametrize("variant", VARIANTS)
    @pytest.mark.parametrize("shards", [2, 3, 5])
    def test_bitwise_parity_all_variants(self, variant, shards):
        g1, g2 = make_pair(seed=5)
        compiled = compile_fsim(g1, g2, make_config(variant=variant))
        ref = VectorizedFSimEngine(compiled).iterate()
        runner = InProcessShardRunner(
            compiled, partition_pairs(compiled, shards)
        )
        assert_bitwise(ref, runner.iterate())

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(seed=st.integers(0, 2**16), shards=st.integers(2, 6),
           variant=st.sampled_from([Variant.DP, Variant.BJ, Variant.B]))
    def test_parity_property(self, seed, shards, variant):
        n = 12 + seed % 20
        g1 = random_graph(n, 3 * n, uniform_labels(n, 3, seed=seed),
                          seed=seed + 1)
        g2 = random_graph(n + 3, 3 * n, uniform_labels(n + 3, 3,
                                                       seed=seed + 2),
                          seed=seed + 3)
        compiled = compile_fsim(g1, g2, make_config(variant=variant))
        ref = VectorizedFSimEngine(compiled).iterate()
        runner = InProcessShardRunner(
            compiled, partition_pairs(compiled, shards)
        )
        assert_bitwise(ref, runner.iterate())

    def test_selfsim_parity(self):
        g1, _ = make_pair(seed=23)
        compiled = compile_fsim(g1, g1, make_config(variant=Variant.BJ))
        ref = VectorizedFSimEngine(compiled).iterate()
        runner = InProcessShardRunner(compiled, partition_pairs(compiled, 4))
        assert_bitwise(ref, runner.iterate())


# ----------------------------------------------------------------------
# real multi-process runtime: both backends, fork and spawn
# ----------------------------------------------------------------------
class TestProcessParity:
    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    @pytest.mark.parametrize("arena_backend", ["ram", "memmap"])
    def test_runtime_parity_backend_matrix(self, start_method,
                                           arena_backend, tmp_path):
        if start_method == "fork" and not hasattr(socket, "AF_UNIX"):
            pytest.skip("fork start method needs a unix-like platform")
        g1, g2 = make_pair(seed=31)
        config = make_config(variant=Variant.DP,
                             arena_backend=arena_backend)
        compiled = compile_fsim(g1, g2, config)
        if arena_backend == "memmap":
            assert compiled.arena_nbytes()["memmap"] > 0
        ref = VectorizedFSimEngine(compiled).iterate()
        runtime = ShardedSweepRuntime(
            compiled, partition_pairs(compiled, 2),
            start_method=start_method,
        )
        try:
            assert_bitwise(ref, runtime.iterate())
            # Second run on the same resident session: the run-id reset
            # protocol must make every run cold (bitwise repeatable).
            assert_bitwise(ref, runtime.iterate())
        finally:
            runtime.close()

    def test_run_sharded_falls_back_when_unavailable(self):
        g1 = random_graph(8, 16, uniform_labels(8, 2, seed=3), seed=4)
        compiled = compile_fsim(g1, g1, make_config(variant=Variant.S))
        ref = VectorizedFSimEngine(compiled).iterate()
        # Tiny workload: open declines, run_sharded silently degrades.
        assert open_sharded_runtime(compiled, 4) is None
        assert_bitwise(ref, run_sharded(compiled, 4))

    def test_open_declines_single_shard(self):
        g1, g2 = make_pair()
        compiled = compile_fsim(g1, g2, make_config())
        assert open_sharded_runtime(compiled, 1, min_updatable=1) is None

    def test_engine_run_shards_parity(self, low_threshold):
        g1, g2 = make_pair(seed=17)
        config = make_config(variant=Variant.DP)
        ref = FSimEngine(g1, g2, config).run()
        res = FSimEngine(g1, g2, config).run(shards=3)
        assert res.scores == ref.scores
        assert res.iterations == ref.iterations
        assert res.deltas == ref.deltas
        # config-driven selection, same contract
        res2 = FSimEngine(g1, g2, config.with_options(shards=3)).run()
        assert res2.scores == ref.scores

    def test_engine_run_rejects_bad_shards(self):
        g1, g2 = make_pair()
        with pytest.raises(ConfigError):
            FSimEngine(g1, g2, make_config()).run(shards=0)

    def test_topk_sharded_parity(self, low_threshold):
        g1, g2 = make_pair(seed=29)
        config = make_config(variant=Variant.DP)
        queries = list(g1.nodes())[:5]
        base = TopKSearch(g1, g2, config).search_many(queries, 3)
        shd = TopKSearch(g1, g2, config).search_many(queries, 3, shards=3)
        for a, b in zip(base, shd):
            assert a.query == b.query
            assert a.partners == b.partners
            assert a.iterations == b.iterations
            assert a.certified == b.certified


# ----------------------------------------------------------------------
# streaming: O(delta) patches that migrate pairs across shard boundaries
# ----------------------------------------------------------------------
class TestStreamingMigration:
    def _paired_sessions(self, config, shards, seed=41):
        n, m, labels = 36, 140, 4
        ga = random_graph(n, m, uniform_labels(n, labels, seed=seed),
                          seed=seed + 1)
        gb = random_graph(n, m, uniform_labels(n, labels, seed=seed),
                          seed=seed + 1)
        ref = IncrementalFSim(ga, ga, config, mode="replay")
        shd = IncrementalFSim(gb, gb, config, mode="replay", shards=shards)
        return ref, shd

    def test_mid_session_edits_stay_bitwise_identical(self, low_threshold):
        config = make_config(variant=Variant.DP)
        ref, shd = self._paired_sessions(config, shards=3)
        try:
            r1, r2 = ref.compute(), shd.compute()
            assert r1.scores == r2.scores
            assert r1.iterations == r2.iterations
            assert shd.stats["sharded_runs"] == 1
            runtime = shd._sharded
            assert runtime is not None and not runtime.closed
            base_bytes = runtime.broadcast_bytes
            assert runtime.base_broadcasts == 1

            # Structural edits patch the resident shards in place;
            # removing and re-adding edges moves dependency entries
            # between rows, i.e. pairs migrate across shard boundaries.
            edges = list(ref.log1.graph.edges())
            for i, (u, v) in enumerate(edges[:3]):
                ref.log1.remove_edge(u, v)
                shd.log1.remove_edge(u, v)
                r1, r2 = ref.compute(), shd.compute()
                assert r1.scores == r2.scores, f"edit {i}: scores diverged"
                assert r1.iterations == r2.iterations
                assert r1.deltas == r2.deltas
            u, v = edges[0]
            ref.log1.add_edge(u, v)
            shd.log1.add_edge(u, v)
            r1, r2 = ref.compute(), shd.compute()
            assert r1.scores == r2.scores
            assert r1.deltas == r2.deltas

            assert shd.stats["compiled_patches"] >= 4
            assert shd._sharded is runtime  # session survived every edit
            # The edits shipped as journal deltas, never a re-broadcast
            # of the base arena slices.
            assert runtime.base_broadcasts == 1
            assert runtime.delta_broadcasts >= 1
            delta_bytes = runtime.broadcast_bytes - base_bytes
            assert 0 < delta_bytes < base_bytes
        finally:
            ref.close()
            shd.close()

    def test_node_add_recompiles_and_reshards(self, low_threshold):
        config = make_config(variant=Variant.DP)
        ref, shd = self._paired_sessions(config, shards=3, seed=47)
        try:
            ref.compute(), shd.compute()
            first_runtime = shd._sharded
            anchor = list(ref.log1.graph.nodes())[0]
            for session in (ref, shd):
                session.log1.add_node("fresh", "L0")
                session.log1.add_edge("fresh", anchor)
            r1, r2 = ref.compute(), shd.compute()
            assert r1.scores == r2.scores
            assert r1.iterations == r2.iterations
            assert shd.stats["full_recompiles"] >= 1
            assert first_runtime is None or first_runtime.closed \
                or shd._sharded is not first_runtime
        finally:
            ref.close()
            shd.close()

    def test_sharded_snapshot_needs_sharded_adoption(self, low_threshold):
        config = make_config(variant=Variant.DP)
        _, shd = self._paired_sessions(config, shards=3, seed=53)
        plain = None
        try:
            shd.compute()
            state = shd.snapshot_state()
            if state.get("trajectory") is not None:
                pytest.skip("session kept a trajectory; guard not reached")
            n = 36
            g = random_graph(n, 140, uniform_labels(n, 4, seed=53),
                             seed=54)
            plain = IncrementalFSim(g, g, config, mode="replay")
            with pytest.raises(ConfigError):
                plain.adopt_state(state)
        finally:
            if plain is not None:
                plain.close()
            shd.close()


# ----------------------------------------------------------------------
# traffic bounds: O(boundary) per iteration, O(delta) per patch
# ----------------------------------------------------------------------
class TestTrafficBounds:
    def test_per_iteration_traffic_is_o_boundary_not_o_arena(self):
        g1, g2 = make_pair(seed=61, n1=60, m1=260, n2=55, m2=240)
        compiled = compile_fsim(g1, g2, make_config(variant=Variant.DP))
        runtime = ShardedSweepRuntime(compiled, partition_pairs(compiled, 3))
        try:
            _, iterations, _, _ = runtime.iterate()
            stats = runtime.stats()
            # Exact wire accounting: every iteration moves the halo
            # (values + dirty flags) and nothing else.
            assert stats["halo_bytes_per_iteration"] == (
                HALO_BYTES_PER_PAIR * runtime.halo_pairs
            )
            assert stats["exchange_bytes"] == (
                iterations * runtime.halo_bytes_per_iteration
            )
            # The regression this guards: per-iteration traffic must be
            # bounded by the boundary, not the arena.  Re-broadcasting
            # scores would cost >= 8 bytes/pair/iteration over the full
            # candidate space.
            arena_bytes = sum(compiled.arena_nbytes().values())
            assert runtime.halo_bytes_per_iteration < arena_bytes
            assert runtime.halo_pairs < compiled.num_updatable
            # The one-time base broadcast is not charged per iteration.
            before = runtime.broadcast_bytes
            _, more_iters, _, _ = runtime.iterate()
            assert runtime.broadcast_bytes == before  # still resident
            assert stats_total(runtime) == (
                (iterations + more_iters) * runtime.halo_bytes_per_iteration
            )
        finally:
            runtime.close()

    def test_watch_traffic_is_o_watch(self):
        g1, g2 = make_pair(seed=67)
        compiled = compile_fsim(g1, g2, make_config(variant=Variant.DP))
        runtime = ShardedSweepRuntime(compiled, partition_pairs(compiled, 2))
        try:
            watch = np.arange(min(5, compiled.num_feasible), dtype=np.int64)
            seen = []
            _, iterations, _, _ = runtime.iterate(
                watch=watch,
                on_iteration=lambda k, values, delta, conv:
                    seen.append(values.shape) and False,
            )
            assert seen == [(len(watch),)] * iterations
            assert runtime.exchange_bytes == iterations * (
                runtime.halo_bytes_per_iteration + 8 * len(watch)
            )
        finally:
            runtime.close()


def stats_total(runtime):
    return runtime.stats()["exchange_bytes"]


# ----------------------------------------------------------------------
# executor registry: live sharded sessions are never reclaimed
# ----------------------------------------------------------------------
class TestExecutorShardGuard:
    def _compiled(self):
        g1, g2 = make_pair(seed=71)
        return compile_fsim(g1, g2, make_config(variant=Variant.DP))

    def test_eviction_and_shutdown_skip_live_sharded_session(self):
        shutdown_executors()
        ex = get_executor("shared_memory", 2)
        compiled = self._compiled()
        runtime = ShardedSweepRuntime(
            compiled, partition_pairs(compiled, 2), executor=ex
        )
        try:
            assert evict_idle_executors(0.0) == 0
            assert get_executor("shared_memory", 2) is ex
            shutdown_all()  # the regression: must not destroy the session
            assert get_executor("shared_memory", 2) is ex
            assert not runtime.closed
            # ...and the session still works after the sweep.
            ref = VectorizedFSimEngine(compiled).iterate()
            assert_bitwise(ref, runtime.iterate())
        finally:
            runtime.close()
        # Once the session closes, the executor is ordinary again.
        assert evict_idle_executors(0.0) >= 1
        assert executor_module._CACHE.get(("shared_memory", 2)) is None
        shutdown_executors()

    def test_closing_executor_closes_registered_runtimes(self):
        ex = SharedMemoryExecutor(2)
        compiled = self._compiled()
        runtime = ShardedSweepRuntime(
            compiled, partition_pairs(compiled, 2), executor=ex
        )
        assert not runtime.closed
        ex.close()
        assert runtime.closed

    def test_capacity_eviction_spares_shard_holder(self, monkeypatch):
        shutdown_executors()
        monkeypatch.setattr(executor_module, "MAX_CACHED_EXECUTORS", 1)
        ex = get_executor("shared_memory", 2)
        compiled = self._compiled()
        runtime = ShardedSweepRuntime(
            compiled, partition_pairs(compiled, 2), executor=ex
        )
        try:
            # Inserting another executor at capacity must not evict the
            # shard holder (soft bound instead).
            get_executor("shared_memory", 3)
            assert executor_module._CACHE.get(("shared_memory", 2)) is ex
            assert not runtime.closed
        finally:
            runtime.close()
            shutdown_executors()


# ----------------------------------------------------------------------
# observability: arena gauge + partition phase span
# ----------------------------------------------------------------------
class TestShardingObservability:
    @pytest.fixture
    def fresh_registry(self):
        prior = metrics.enabled()
        metrics.configure(enabled=True)
        metrics.REGISTRY.reset()
        yield metrics.REGISTRY
        metrics.REGISTRY.reset()
        metrics.configure(enabled=prior)

    def test_compile_sets_arena_bytes_gauge(self, fresh_registry):
        g1, g2 = make_pair(seed=73)
        compiled = compile_fsim(g1, g2, make_config())
        sizes = compiled.arena_nbytes()
        ram = fresh_registry.get("repro_arena_bytes", kind="ram")
        memmap = fresh_registry.get("repro_arena_bytes", kind="memmap")
        assert ram is not None and ram.value == float(sizes["ram"])
        assert memmap is not None and memmap.value == float(sizes["memmap"])
        assert ram.value > 0

    def test_memmap_compile_reports_memmap_bytes(self, fresh_registry,
                                                 tmp_path):
        g1, g2 = make_pair(seed=79)
        compile_fsim(g1, g2, make_config(arena_backend="memmap"))
        memmap = fresh_registry.get("repro_arena_bytes", kind="memmap")
        assert memmap is not None and memmap.value > 0

    def test_partition_records_phase_span(self, fresh_registry):
        g1, g2 = make_pair(seed=83)
        compiled = compile_fsim(g1, g2, make_config())
        partition_pairs(compiled, 3)
        hist = fresh_registry.get(PHASE_HISTOGRAM,
                                  phase="compile.partition")
        assert hist is not None and hist.count >= 1


# ----------------------------------------------------------------------
# ClientPool (extracted from bench_service)
# ----------------------------------------------------------------------
class TestClientPool:
    def test_pool_opens_wraps_and_closes(self):
        with ServerThread(GraphStore()) as server:
            with ClientPool(server.port, 3) as pool:
                assert len(pool) == 3
                assert len(set(map(id, pool))) == 3  # distinct sockets
                assert pool.client(0) is pool.client(3)  # wraparound
                assert pool.client(2) is pool.clients[2]
                for client in pool:
                    assert client.ping()["pong"] is True
            # close() drained the pool and is idempotent
            assert len(pool) == 0
            pool.close()

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            ClientPool(12345, 0)

    def test_connect_failure_propagates(self):
        # A bound-but-closed ephemeral port: nothing is listening.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(ServiceConnectionError):
            ClientPool(port, 2, timeout=2.0)

    def test_forwards_client_kwargs(self):
        with ServerThread(GraphStore()) as server:
            with ClientPool(server.port, 2, tracing=True) as pool:
                pool.client(0).graphs()  # ping is deliberately untraced
                assert pool.client(0).last_trace_id is not None
                assert pool.client(1).last_trace_id is None
