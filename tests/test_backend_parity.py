"""Backend parity: the vectorized numpy engine vs the reference engine.

The acceptance bar for the compiled backend is scores within 1e-9 of the
dict-based reference across every variant, pruning configuration, pinned
pairs and self-similarity -- in practice the backends agree bitwise,
because the compiler replicates the reference's iteration order, greedy
tie-breaking (repr rank) and clamping arithmetic (see docs/PERF.md).
"""

import warnings

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import FSimConfig, FSimEngine, vectorized_fallback_reason
from repro.graph import LabeledDigraph, figure1_graphs
from repro.graph.generators import random_graph, uniform_labels
from repro.simulation import Variant

ALL_VARIANTS = [Variant.S, Variant.DP, Variant.B, Variant.BJ]

TOLERANCE = 1e-9


def assert_parity(graph1, graph2, config, tolerance=TOLERANCE):
    reference = FSimEngine(
        graph1, graph2, config.with_options(backend="python")
    ).run()
    vectorized = FSimEngine(
        graph1, graph2, config.with_options(backend="numpy")
    ).run()
    assert reference.scores.keys() == vectorized.scores.keys()
    for pair, value in reference.scores.items():
        assert abs(vectorized.scores[pair] - value) <= tolerance, pair
    assert vectorized.iterations == reference.iterations
    assert vectorized.converged == reference.converged
    assert vectorized.num_candidates == reference.num_candidates
    assert vectorized.deltas == pytest.approx(reference.deltas, abs=tolerance)
    return reference, vectorized


@pytest.fixture
def graph_pair():
    g1 = random_graph(18, 40, uniform_labels(18, 3, seed=21), seed=22)
    g2 = random_graph(22, 55, uniform_labels(22, 3, seed=23), seed=24)
    return g1, g2


class TestVariantParity:
    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    @pytest.mark.parametrize("label_function", ["indicator", "jaro_winkler"])
    def test_two_graphs(self, variant, label_function, graph_pair):
        g1, g2 = graph_pair
        assert_parity(
            g1, g2, FSimConfig(variant=variant, label_function=label_function)
        )

    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_self_similarity(self, variant, graph_pair):
        g1, _ = graph_pair
        assert_parity(g1, g1, FSimConfig(variant=variant))

    def test_cross_configuration(self, graph_pair):
        g1, _ = graph_pair
        assert_parity(
            g1, g1,
            FSimConfig(
                variant=Variant.CROSS, w_out=0.0, w_in=0.8,
                label_function="indicator",
            ),
        )

    def test_figure1(self):
        pattern, data = figure1_graphs()
        for variant in ALL_VARIANTS:
            assert_parity(
                pattern, data,
                FSimConfig(variant=variant, label_function="indicator"),
            )


class TestPruningParity:
    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    @pytest.mark.parametrize("theta", [0.0, 0.6, 1.0])
    def test_theta(self, variant, theta, graph_pair):
        g1, g2 = graph_pair
        assert_parity(g1, g2, FSimConfig(variant=variant, theta=theta))

    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    @pytest.mark.parametrize("beta,alpha", [(0.5, 0.0), (0.8, 0.4)])
    def test_upper_bound(self, variant, beta, alpha, graph_pair):
        g1, g2 = graph_pair
        reference, vectorized = assert_parity(
            g1, g2,
            FSimConfig(
                variant=variant, use_upper_bound=True, beta=beta, alpha=alpha
            ),
        )
        # The alpha-fallback must answer pruned pairs identically too.
        for u in g1.nodes():
            for v in g2.nodes():
                assert vectorized.score(u, v) == pytest.approx(
                    reference.score(u, v), abs=TOLERANCE
                )

    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_fig9_configuration(self, variant, graph_pair):
        g1, _ = graph_pair
        assert_parity(
            g1, g1,
            FSimConfig(variant=variant, theta=1.0, use_upper_bound=True),
        )

    @pytest.mark.parametrize("normalizer", ["table3", "max"])
    def test_normalizers(self, normalizer, graph_pair):
        g1, g2 = graph_pair
        for variant in (Variant.DP, Variant.BJ):
            assert_parity(
                g1, g2, FSimConfig(variant=variant, normalizer=normalizer)
            )


class TestPinnedParity:
    def test_pinned_pairs(self, graph_pair):
        g1, _ = graph_pair
        nodes = g1.nodes()
        pinned = {
            (nodes[0], nodes[0]): 1.0,  # feasible diagonal pin
            (nodes[1], nodes[2]): 0.5,  # arbitrary pin
            ("missing", "nodes"): 0.25,  # off-graph pin
        }
        reference, vectorized = assert_parity(
            g1, g1,
            FSimConfig(
                variant=Variant.S, label_function="indicator",
                pinned_pairs=pinned,
            ),
        )
        for pair, value in pinned.items():
            assert vectorized.scores[pair] == value

    @pytest.mark.parametrize("variant", ALL_VARIANTS + [Variant.CROSS])
    def test_negative_pinned_values(self, variant, graph_pair):
        # The reference s/b mapping floors each source's best weight at
        # 0.0; a negative pinned score must not leak into the sums.
        g1, _ = graph_pair
        nodes = g1.nodes()
        weights = (
            {"w_out": 0.3, "w_in": 0.5} if variant is Variant.CROSS else {}
        )
        assert_parity(
            g1, g1,
            FSimConfig(
                variant=variant, label_function="indicator",
                pinned_pairs={(nodes[0], nodes[1]): -0.9}, **weights,
            ),
        )

    def test_pinned_with_pruning(self, graph_pair):
        g1, _ = graph_pair
        nodes = g1.nodes()
        assert_parity(
            g1, g1,
            FSimConfig(
                variant=Variant.BJ, theta=1.0, use_upper_bound=True,
                pinned_pairs={(nodes[0], nodes[0]): 1.0},
            ),
        )


class TestBackendSelection:
    def test_explicit_numpy_falls_back_with_warning(self, graph_pair):
        g1, _ = graph_pair
        config = FSimConfig(
            variant=Variant.S, backend="numpy",
            init_function=lambda u, v: 0.5,
        )
        with pytest.warns(RuntimeWarning, match="init_function"):
            result = FSimEngine(g1, g1, config).run()
        assert result.converged

    def test_auto_fallback_is_silent(self, graph_pair):
        g1, _ = graph_pair
        config = FSimConfig(
            variant=Variant.S, backend="auto",
            candidate_filter=lambda u, v: True,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            FSimEngine(g1, g1, config).run()

    def test_fallback_reasons(self):
        assert vectorized_fallback_reason(FSimConfig()) is None
        assert "init_function" in vectorized_fallback_reason(
            FSimConfig(init_function=lambda u, v: 0.0)
        )
        assert "candidate_filter" in vectorized_fallback_reason(
            FSimConfig(candidate_filter=lambda u, v: True)
        )
        assert "exact" in vectorized_fallback_reason(
            FSimConfig(variant=Variant.BJ, matching_mode="exact")
        )
        # Exact matching only matters for the injective variants.
        assert vectorized_fallback_reason(
            FSimConfig(variant=Variant.S, matching_mode="exact")
        ) is None

    def test_invalid_backend_rejected(self):
        from repro.exceptions import ConfigError

        with pytest.raises(ConfigError):
            FSimConfig(backend="cuda")

    def test_workers_match_serial(self, graph_pair):
        g1, _ = graph_pair
        config = FSimConfig(
            variant=Variant.BJ, theta=1.0, use_upper_bound=True,
            backend="numpy",
        )
        serial = FSimEngine(g1, g1, config).run(workers=1)
        parallel = FSimEngine(g1, g1, config).run(workers=2)
        assert serial.scores == parallel.scores
        assert serial.iterations == parallel.iterations


@st.composite
def labeled_digraphs(draw, max_nodes=8, max_labels=3):
    """Small random labeled digraphs (hypothesis strategy)."""
    size = draw(st.integers(min_value=0, max_value=max_nodes))
    graph = LabeledDigraph()
    for node in range(size):
        label = draw(st.integers(min_value=0, max_value=max_labels - 1))
        graph.add_node(node, label=f"L{label}")
    possible = [(u, v) for u in range(size) for v in range(size)]
    for u, v in possible:
        if draw(st.booleans()):
            graph.add_edge(u, v)
    return graph


@given(
    graph=labeled_digraphs(),
    variant=st.sampled_from(ALL_VARIANTS),
    theta=st.sampled_from([0.0, 1.0]),
    use_ub=st.booleans(),
)
@settings(
    max_examples=30, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_property_backend_parity(graph, variant, theta, use_ub):
    """Property: the backends agree on arbitrary small graphs."""
    config = FSimConfig(
        variant=variant, theta=theta, use_upper_bound=use_ub,
        label_function="indicator",
    )
    assert_parity(graph, graph, config)
