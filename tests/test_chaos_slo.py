"""Chaos drill: SIGKILL a follower, watch the lag SLO fire and resolve.

The scenario the replication-lag objective exists for, run against real
``python -m repro serve`` subprocesses:

1. primary + follower come up healthy; the fleet view shows both;
2. the follower is SIGKILLed while a write pump hammers the primary;
   the fleet view (``stats --cluster``) reports the advertised
   follower as down;
3. a replacement follower bootstraps into the still-moving WAL head,
   but its stream is repeatedly cut by injected ``partition`` faults
   (the same :class:`FaultInjector` the durability suite uses) -- a
   dense burst of drops means each short session applies only a
   handful of records while the pump keeps writing, so the backlog
   grows monotonically and every reconnect header pins the *true*
   head: ``repro_replica_lag_records`` stays above the bound long
   enough to drive the ``replication_lag`` SLO through pending ->
   firing within the scaled fast window;
4. the pump stops, the follower catches up, the alert resolves, and
   health returns to ``ok``.

Assertions ride on the *cumulative* ``fired_total`` / ``resolved_total``
counters, not on catching a transient state at the right instant.

Subprocess isolation matters here: the metrics registry is
process-global, so per-server SLO state is only observable across real
process boundaries (in-process multi-server harnesses share one
registry).
"""

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.graph.generators import random_graph, uniform_labels
from repro.graph.io import save_graph
from repro.service import ServiceClient
from repro.service.wal import FaultInjector

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Shrinks the Google-SRE windows (5m/1h fast, 6h/3d slow) to
#: 30ms/360ms and 2.16s/25.9s -- the exact production state machine,
#: exercised in seconds.
WINDOW_SCALE = 1e-4
SLO_INTERVAL = 0.01


def wait_for(predicate, timeout=60.0, interval=0.05, message="condition"):
    deadline = time.time() + timeout
    while time.time() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {message}")


def make_graph(num_nodes=18, num_edges=45, labels=3, seed=5):
    return random_graph(
        num_nodes, num_edges,
        uniform_labels(num_nodes, labels, seed=seed), seed=seed + 1,
    )


def _spawn(extra_args, fault=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop(FaultInjector.ENV_VAR, None)
    if fault is not None:
        env[FaultInjector.ENV_VAR] = fault
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--window", "0.001",
         "--variant", "b", "--label-function", "indicator",
         "--backend", "numpy",
         "--slo-interval", str(SLO_INTERVAL),
         "--slo-window-scale", str(WINDOW_SCALE),
         "--lag-slo-records", "8"] + extra_args,
        env=env, cwd=str(REPO_ROOT),
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    port = None
    deadline = time.time() + 60.0
    while time.time() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        if line.startswith("# ready on "):
            port = int(line.rsplit(":", 1)[1])
            break
    if port is None:
        process.kill()
        raise AssertionError("server never printed its ready line")
    return process, port


def _reap(process, timeout=60):
    process.stdout.close()
    try:
        return process.wait(timeout=timeout)
    except subprocess.TimeoutExpired:
        process.kill()
        process.wait(timeout=10)
        raise AssertionError("server subprocess failed to exit")


def _shutdown(process):
    if process.poll() is None:
        process.kill()
    return _reap(process)


def _cluster_table(primary_port, *replica_addresses):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    argv = [sys.executable, "-m", "repro", "stats",
            f"127.0.0.1:{primary_port}", "--cluster"]
    for address in replica_addresses:
        argv += ["--replica", address]
    result = subprocess.run(argv, env=env, cwd=str(REPO_ROOT),
                            capture_output=True, text=True, timeout=60)
    assert result.returncode == 0, result.stdout + result.stderr
    return result.stdout


class TestChaosLagSLO:
    def test_sigkill_follower_lag_slo_fires_then_resolves(self, tmp_path):
        graph_path = tmp_path / "g.txt"
        save_graph(make_graph(), graph_path)

        primary_proc, primary_port = _spawn(
            ["--graph", f"g={graph_path}",
             "--wal-dir", str(tmp_path / "wal"),
             "--port", "0"])
        follower_proc, follower_port = _spawn(
            ["--replicate-from", f"127.0.0.1:{primary_port}",
             "--port", "0"])
        pump_stop = threading.Event()
        pump_serial = [0]

        def pump():
            with ServiceClient(port=primary_port, timeout=30.0) as writer:
                while not pump_stop.is_set():
                    serial = pump_serial[0] = pump_serial[0] + 1
                    writer.mutate(
                        "g", [("add_node", 10_000 + serial, serial % 3)])

        pump_thread = threading.Thread(target=pump, daemon=True)
        try:
            # phase 1: both instances healthy in the fleet view
            with ServiceClient(port=follower_port, timeout=30.0) as fc:
                wait_for(
                    lambda: fc.stats()["replication"]["tail"]["connected"],
                    message="follower connected")
            table = _cluster_table(primary_port)
            assert "primary" in table and "replica" in table
            assert "down" not in table

            # phase 2: kill the follower under write load
            pump_thread.start()
            follower_address = f"127.0.0.1:{follower_port}"
            os.kill(follower_proc.pid, signal.SIGKILL)
            assert _reap(follower_proc) == -signal.SIGKILL
            table = _cluster_table(primary_port, follower_address)
            assert "down" in table

            # phase 3: a replacement follower joins the still-moving
            # head, but injected partitions keep cutting its stream
            # after every 8 applied records -- under write load it
            # falls further behind each short session, and its lag
            # SLO must page.
            partition_storm = ",".join(
                f"partition:{n}" for n in range(8, 1200, 8))
            replacement_proc, replacement_port = _spawn(
                ["--replicate-from", f"127.0.0.1:{primary_port}",
                 "--port", "0"],
                fault=partition_storm)
            try:
                rc = ServiceClient(port=replacement_port, timeout=30.0)

                def lag_alert():
                    return rc.stats()["alerts"]["objectives"][
                        "replication_lag"]

                wait_for(
                    lambda: rc.stats()["replication"]["tail"]["connected"],
                    message="replacement connected")
                wait_for(lambda: lag_alert()["fired_total"] >= 1,
                         message="replication_lag SLO firing")
                # while it lags, the follower's own health degrades
                # (transient -- only check when the alert is still up)
                stats = rc.stats()
                alert = stats["alerts"]["objectives"]["replication_lag"]
                if alert["state"] == "firing":
                    assert stats["health"]["status"] == "degraded"
                table = _cluster_table(
                    primary_port, f"127.0.0.1:{replacement_port}")
                assert "replica" in table

                # phase 4: stop the pump; catch-up drains the windows
                # and the alert resolves.
                pump_stop.set()
                pump_thread.join(timeout=30)
                wait_for(lambda: lag_alert()["resolved_total"] >= 1,
                         message="replication_lag SLO resolved")
                wait_for(
                    lambda: rc.stats()["replication"]["tail"][
                        "lag_records"] == 0,
                    message="follower caught up")
                wait_for(
                    lambda: rc.stats()["health"]["status"] == "ok",
                    message="follower healthy again")
                alert = lag_alert()
                assert alert["state"] != "firing"
                assert alert["fired_total"] >= 1
                assert alert["resolved_total"] >= 1

                table = _cluster_table(
                    primary_port, f"127.0.0.1:{replacement_port}")
                assert "primary" in table and "replica" in table
                rc.close()
            finally:
                _shutdown(replacement_proc)
        finally:
            pump_stop.set()
            if pump_thread.is_alive():
                pump_thread.join(timeout=30)
            _shutdown(primary_proc)
