"""Tests for the iterative FSim engine (Algorithm 1)."""

import pytest

from repro.core import FSimConfig, FSimEngine, fsim_matrix
from repro.core.engine import is_one
from repro.graph import figure1_graphs, from_edges
from repro.graph.examples import TABLE2_EXPECTED
from repro.graph.generators import random_graph, uniform_labels
from repro.simulation import Variant, maximal_simulation

ALL_VARIANTS = [Variant.S, Variant.DP, Variant.B, Variant.BJ]

EXACT_CFG = dict(label_function="indicator", matching_mode="exact")


class TestFigure1Scores:
    """Fractional counterpart of Table 2."""

    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_definiteness_matches_exact_relation(self, variant, figure1):
        pattern, data = figure1
        result = fsim_matrix(pattern, data, variant, **EXACT_CFG)
        for candidate, expected in TABLE2_EXPECTED[variant.value].items():
            assert is_one(result.score("u", candidate)) == expected

    def test_near_miss_scores_high(self, figure1):
        pattern, data = figure1
        result = fsim_matrix(pattern, data, Variant.BJ, **EXACT_CFG)
        # v3 nearly bj-simulates u (paper reports 0.94); far above v1.
        assert 0.8 < result.score("u", "v3") < 1.0
        assert result.score("u", "v3") > result.score("u", "v1")

    def test_v1_is_weakest_candidate(self, figure1):
        pattern, data = figure1
        for variant in ALL_VARIANTS:
            result = fsim_matrix(pattern, data, variant, **EXACT_CFG)
            scores = {c: result.score("u", c) for c in ("v1", "v2", "v3", "v4")}
            assert min(scores, key=scores.get) == "v1", variant


class TestProperties:
    """The three properties of Definition 4."""

    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_p1_range(self, variant, small_random_graph, medium_random_graph):
        result = fsim_matrix(
            small_random_graph, medium_random_graph, variant, **EXACT_CFG
        )
        for value in result.scores.values():
            assert 0.0 <= value <= 1.0

    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_p2_simulation_definiteness(self, variant):
        for seed in range(3):
            g1 = random_graph(8, 14, uniform_labels(8, 2, seed), seed=seed)
            g2 = random_graph(9, 16, uniform_labels(9, 2, seed + 9), seed=seed + 9)
            exact = maximal_simulation(g1, g2, variant)
            result = fsim_matrix(g1, g2, variant, **EXACT_CFG)
            for u in g1.nodes():
                for v in g2.nodes():
                    simulated = (u, v) in exact
                    assert is_one(result.score(u, v)) == simulated, (
                        variant, seed, u, v,
                    )

    @pytest.mark.parametrize("variant", [Variant.B, Variant.BJ])
    def test_p3_symmetry(self, variant, small_random_graph):
        g = small_random_graph
        result = fsim_matrix(g, g, variant, **EXACT_CFG)
        for u in g.nodes():
            for v in g.nodes():
                assert result.score(u, v) == pytest.approx(
                    result.score(v, u), abs=1e-9
                )

    def test_asymmetric_variants_really_asymmetric(self):
        # u's children are a subset of v's: s-simulated one way only.
        g = from_edges(
            [("u", "c1"), ("v", "d1"), ("v", "d2")],
            {"u": "P", "v": "P", "c1": "C", "d1": "C", "d2": "D"},
        )
        result = fsim_matrix(g, g, Variant.S, **EXACT_CFG)
        assert is_one(result.score("u", "v"))
        assert not is_one(result.score("v", "u"))


class TestConvergence:
    def test_deltas_monotone_decreasing_exact(self, small_random_graph):
        result = fsim_matrix(
            small_random_graph, small_random_graph, Variant.BJ,
            epsilon=1e-6, **EXACT_CFG,
        )
        deltas = result.deltas
        for before, after in zip(deltas, deltas[1:]):
            assert after <= before + 1e-12

    def test_corollary1_budget_respected(self, small_random_graph):
        cfg = FSimConfig(variant=Variant.S, label_function="indicator")
        result = FSimEngine(small_random_graph, small_random_graph, cfg).run()
        assert result.iterations <= cfg.iteration_budget()
        assert result.converged

    def test_contraction_rate(self, small_random_graph):
        # Theorem 1: delta_{k+1} <= (w+ + w-) * delta_k with exact matching.
        result = fsim_matrix(
            small_random_graph, small_random_graph, Variant.S,
            epsilon=1e-8, **EXACT_CFG,
        )
        rate = 0.8  # w+ + w- at defaults
        for before, after in zip(result.deltas, result.deltas[1:]):
            assert after <= rate * before + 1e-12


class TestThetaPruning:
    def test_theta_one_only_same_labels(self, medium_random_graph):
        g = medium_random_graph
        result = fsim_matrix(g, g, Variant.S, theta=1.0, label_function="indicator")
        for (u, v) in result.scores:
            assert g.label(u) == g.label(v)

    def test_candidate_count_shrinks_with_theta(self, medium_random_graph):
        g = medium_random_graph
        low = fsim_matrix(g, g, Variant.S, theta=0.0)
        high = fsim_matrix(g, g, Variant.S, theta=1.0)
        assert high.num_candidates < low.num_candidates

    def test_theta_preserves_definiteness(self, small_random_graph):
        g = small_random_graph
        exact = maximal_simulation(g, g, Variant.S)
        result = fsim_matrix(g, g, Variant.S, theta=1.0, **EXACT_CFG)
        for u in g.nodes():
            for v in g.nodes():
                assert is_one(result.score(u, v)) == ((u, v) in exact)


class TestUpperBoundUpdating:
    def test_bound_dominates_scores(self, small_random_graph):
        g = small_random_graph
        cfg = FSimConfig(variant=Variant.BJ, label_function="indicator",
                         matching_mode="exact")
        engine = FSimEngine(g, g, cfg)
        result = engine.run()
        for (u, v), value in result.scores.items():
            assert value <= engine.upper_bound(u, v) + 1e-9

    def test_pruning_reduces_candidates(self, medium_random_graph):
        g = medium_random_graph
        plain = fsim_matrix(g, g, Variant.BJ, label_function="indicator")
        pruned = fsim_matrix(
            g, g, Variant.BJ, label_function="indicator",
            use_upper_bound=True, beta=0.5,
        )
        assert pruned.num_candidates <= plain.num_candidates

    def test_alpha_fallback_used(self, medium_random_graph):
        g = medium_random_graph
        result = fsim_matrix(
            g, g, Variant.BJ, label_function="indicator",
            use_upper_bound=True, beta=0.9, alpha=0.3,
        )
        # some pair must have been pruned at this aggressive beta
        pruned_pair = None
        for u in g.nodes():
            for v in g.nodes():
                if g.label(u) == g.label(v) and (u, v) not in result.scores:
                    pruned_pair = (u, v)
                    break
            if pruned_pair:
                break
        if pruned_pair is not None:
            assert result.score(*pruned_pair) >= 0.0

    def test_high_scores_survive_pruning(self, small_random_graph):
        g = small_random_graph
        exact = maximal_simulation(g, g, Variant.S)
        result = fsim_matrix(
            g, g, Variant.S, use_upper_bound=True, beta=0.5, **EXACT_CFG
        )
        for u, v in exact.pairs():
            assert is_one(result.score(u, v))


class TestResultHelpers:
    def test_top_k_sorted(self, small_random_graph):
        g = small_random_graph
        result = fsim_matrix(g, g, Variant.S, **EXACT_CFG)
        node = g.nodes()[0]
        top = result.top_k(node, 5)
        assert len(top) <= 5
        values = [value for _, value in top]
        assert values == sorted(values, reverse=True)
        assert result.best_partner(node) == top[0]

    def test_self_is_argmax(self, small_random_graph):
        g = small_random_graph
        result = fsim_matrix(g, g, Variant.BJ, **EXACT_CFG)
        for node in g.nodes():
            assert node in result.argmax_partners(node)

    def test_score_vector(self, small_random_graph):
        g = small_random_graph
        result = fsim_matrix(g, g, Variant.S, **EXACT_CFG)
        nodes = g.nodes()[:3]
        pairs = [(u, u) for u in nodes]
        assert result.score_vector(pairs) == [result.score(u, u) for u in nodes]

    def test_workers_must_be_positive(self, small_random_graph):
        from repro.exceptions import ConfigError

        engine = FSimEngine(small_random_graph, small_random_graph, FSimConfig())
        with pytest.raises(ConfigError):
            engine.run(workers=0)
