"""Tests for the node-similarity case study (Tables 7-8 machinery)."""

import pytest

from repro.apps.similarity import (
    FSimVenueSimilarity,
    JoinSim,
    NSimGram,
    PCRW,
    PathSim,
    evaluate_table8,
    generate_dbis,
    ndcg_at_k,
    rank_venues,
    relevance,
    venue_author_matrix,
)
from repro.apps.similarity.baselines import score_all_venues
from repro.apps.similarity.dbis import PAPER_LABEL, VENUE_LABEL
from repro.simulation import Variant


@pytest.fixture(scope="module")
def dbis():
    return generate_dbis(seed=0)


class TestGenerator:
    def test_schema(self, dbis):
        graph, meta = dbis
        venues = graph.nodes_with_label(VENUE_LABEL)
        papers = graph.nodes_with_label(PAPER_LABEL)
        assert len(venues) == 33  # 30 venues + 3 duplicates
        assert len(papers) > 100
        # papers point at exactly one venue
        for paper in papers:
            targets = graph.out_neighbors(paper)
            assert len(targets) == 1
            assert graph.label(targets[0]) == VENUE_LABEL

    def test_authors_have_unique_labels(self, dbis):
        graph, meta = dbis
        authors = [
            n for n in graph.nodes()
            if graph.label(n) not in (VENUE_LABEL, PAPER_LABEL)
        ]
        assert all(graph.label(a) == a for a in authors)

    def test_metadata(self, dbis):
        _, meta = dbis
        assert meta.venue_area["WWW"] == "web"
        assert meta.venue_tier["SIGMOD"] == 1
        assert meta.duplicates["WWW1"] == "WWW"
        assert meta.is_duplicate_of("WWW2", "WWW")
        assert not meta.is_duplicate_of("CIKM", "WWW")
        assert len(meta.subject_venues) == 15

    def test_duplicates_match_subject_size(self, dbis):
        graph, meta = dbis
        www_papers = graph.in_degree("WWW")
        for dup in meta.duplicates:
            assert graph.in_degree(dup) == www_papers

    def test_deterministic(self):
        g1, _ = generate_dbis(seed=5)
        g2, _ = generate_dbis(seed=5)
        assert g1.same_structure(g2)


class TestBaselines:
    @pytest.mark.parametrize("cls", [PathSim, JoinSim, PCRW, NSimGram])
    def test_self_similarity_is_max(self, cls, dbis):
        graph, meta = dbis
        algorithm = cls(graph)
        venues = meta.venues()
        for subject in ("WWW", "SIGMOD"):
            scores = score_all_venues(algorithm, subject, venues)
            assert scores[subject] == max(scores.values())

    @pytest.mark.parametrize("cls", [PathSim, JoinSim, PCRW, NSimGram])
    def test_symmetry(self, cls, dbis):
        graph, _ = dbis
        algorithm = cls(graph)
        assert algorithm.similarity("WWW", "CIKM") == pytest.approx(
            algorithm.similarity("CIKM", "WWW")
        )

    def test_pathsim_self_is_one(self, dbis):
        graph, _ = dbis
        assert PathSim(graph).similarity("WWW", "WWW") == pytest.approx(1.0)

    def test_same_area_beats_cross_area(self, dbis):
        graph, _ = dbis
        algorithm = PathSim(graph)
        assert algorithm.similarity("WWW", "CIKM") > algorithm.similarity(
            "WWW", "NeurIPS"
        )

    def test_venue_author_matrix(self, dbis):
        graph, meta = dbis
        profiles = venue_author_matrix(graph)
        assert set(profiles) == set(meta.venues())
        total_authorships = sum(sum(c.values()) for c in profiles.values())
        author_edges = sum(
            1
            for s, t in graph.edges()
            if graph.label(t) == PAPER_LABEL
        )
        assert total_authorships == author_edges


class TestFSimVenueSimilarity:
    @pytest.fixture(scope="class")
    def fbj(self, dbis):
        graph, _ = dbis
        return FSimVenueSimilarity(graph, Variant.BJ)

    def test_headline_duplicates_in_top5(self, dbis, fbj):
        _, meta = dbis
        top5 = rank_venues(fbj.scores_for("WWW", meta.venues()), "WWW", 5)
        found = [v for v in top5 if meta.is_duplicate_of(v, "WWW")]
        assert len(found) == 3, top5

    def test_symmetric(self, fbj):
        assert fbj.similarity("WWW", "CIKM") == pytest.approx(
            fbj.similarity("CIKM", "WWW"), abs=1e-9
        )

    def test_self_score_one(self, fbj):
        assert fbj.similarity("WWW", "WWW") == pytest.approx(1.0)


class TestEvaluation:
    def test_relevance_levels(self, dbis):
        _, meta = dbis
        assert relevance(meta, "WWW", "WWW") == 2
        assert relevance(meta, "WWW", "WWW1") == 2  # duplicate
        assert relevance(meta, "WWW", "CIKM") == 2  # same area + tier
        assert relevance(meta, "WWW", "ICWE") == 1  # same area, lower tier
        assert relevance(meta, "WWW", "NeurIPS") == 0

    def test_ndcg_bounds(self):
        assert ndcg_at_k([2, 2, 1, 0], 4) == pytest.approx(1.0)
        assert ndcg_at_k([0, 0, 0], 3) == 0.0
        worse = ndcg_at_k([0, 1, 2], 3)
        better = ndcg_at_k([2, 1, 0], 3)
        assert 0 < worse < better <= 1.0

    def test_ndcg_empty(self):
        assert ndcg_at_k([], 5) == 0.0

    def test_rank_venues_subject_first(self, dbis):
        graph, meta = dbis
        scores = {v: 0.5 for v in meta.venues()}
        scores["WWW"] = 0.5  # ties everywhere: subject must still lead
        ranked = rank_venues(scores, "WWW", 5)
        assert ranked[0] == "WWW"

    def test_table8_pipeline(self, dbis):
        graph, meta = dbis
        venues = meta.venues()
        algorithm = PathSim(graph)
        scorers = {
            "PathSim": lambda s: score_all_venues(algorithm, s, venues)
        }
        ndcg = evaluate_table8(scorers, meta, venues, k=15)
        assert 0.0 < ndcg["PathSim"] <= 1.0
