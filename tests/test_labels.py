"""Tests for the label similarity functions (the L of Section 3.3)."""

import pytest

from repro.exceptions import ConfigError
from repro.labels import (
    available_label_functions,
    edit_distance,
    get_label_function,
    indicator,
    jaro_similarity,
    jaro_winkler_similarity,
    normalized_edit_similarity,
    register_label_function,
)


class TestIndicator:
    def test_equal(self):
        assert indicator("abc", "abc") == 1.0

    def test_unequal(self):
        assert indicator("abc", "abd") == 0.0

    def test_non_string_labels(self):
        assert indicator(7, 7) == 1.0
        assert indicator(7, 8) == 0.0


class TestEditDistance:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("", "", 0),
            ("abc", "abc", 0),
            ("abc", "", 3),
            ("", "xy", 2),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("a", "b", 1),
        ],
    )
    def test_known_distances(self, a, b, expected):
        assert edit_distance(a, b) == expected

    def test_symmetric(self):
        assert edit_distance("graph", "fraph") == edit_distance("fraph", "graph")

    def test_normalized_similarity(self):
        assert normalized_edit_similarity("abc", "abc") == 1.0
        assert normalized_edit_similarity("abc", "abd") == pytest.approx(2 / 3)
        assert normalized_edit_similarity("abc", "xyz") == 0.0

    def test_normalized_one_iff_equal(self):
        # The framework requires L = 1 iff labels are equal.
        assert normalized_edit_similarity("ab", "ba") < 1.0


class TestJaro:
    def test_equal_strings(self):
        assert jaro_similarity("martha", "martha") == 1.0

    def test_known_value(self):
        # Classic textbook pair.
        assert jaro_similarity("MARTHA", "MARHTA") == pytest.approx(0.944444, abs=1e-5)

    def test_disjoint_strings(self):
        assert jaro_similarity("abc", "xyz") == 0.0

    def test_empty_string(self):
        assert jaro_similarity("", "abc") == 0.0

    def test_jaro_winkler_boosts_prefix(self):
        plain = jaro_similarity("prefixes", "prefixed")
        boosted = jaro_winkler_similarity("prefixes", "prefixed")
        assert boosted > plain

    def test_jaro_winkler_one_iff_equal(self):
        assert jaro_winkler_similarity("same", "same") == 1.0
        assert jaro_winkler_similarity("samex", "samey") < 1.0

    def test_jaro_winkler_range(self):
        for a, b in [("a", "ab"), ("graph", "graphs"), ("x", "y")]:
            assert 0.0 <= jaro_winkler_similarity(a, b) < 1.0


class TestRegistry:
    def test_lookup_by_name(self):
        assert get_label_function("indicator") is indicator

    def test_lookup_passthrough(self):
        custom = lambda a, b: 0.5  # noqa: E731
        assert get_label_function(custom) is custom

    def test_unknown_name(self):
        with pytest.raises(ConfigError):
            get_label_function("nope")

    def test_available_contains_paper_functions(self):
        names = available_label_functions()
        assert {"indicator", "edit", "jaro_winkler"} <= set(names)

    def test_register_and_duplicate(self):
        name = "custom-test-fn"
        if name not in available_label_functions():
            register_label_function(name, lambda a, b: 0.0)
        assert name in available_label_functions()
        with pytest.raises(ConfigError):
            register_label_function(name, lambda a, b: 1.0)
