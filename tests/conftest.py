"""Shared fixtures for the test suite."""

import pytest

from repro.graph import figure1_graphs
from repro.graph.generators import random_graph, uniform_labels


@pytest.fixture
def figure1():
    """The paper's Figure 1 graphs as a (pattern, data) pair."""
    return figure1_graphs()


@pytest.fixture
def small_random_graph():
    """A deterministic 15-node, 30-edge graph over 3 labels."""
    return random_graph(15, 30, uniform_labels(15, 3, seed=41), seed=42)


@pytest.fixture
def medium_random_graph():
    """A deterministic 40-node, 100-edge graph over 5 labels."""
    return random_graph(40, 100, uniform_labels(40, 5, seed=43), seed=44)
