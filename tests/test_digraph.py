"""Unit tests for the LabeledDigraph data structure."""

import pytest

from repro.exceptions import EdgeNotFoundError, GraphError, NodeNotFoundError
from repro.graph import LabeledDigraph
from repro.graph.digraph import (
    check_same_label_sets,
    degree_sequence,
    edge_set,
    nodes_sorted,
)


def build_triangle():
    g = LabeledDigraph("triangle")
    for node, label in (("a", "X"), ("b", "Y"), ("c", "X")):
        g.add_node(node, label)
    g.add_edge("a", "b")
    g.add_edge("b", "c")
    g.add_edge("c", "a")
    return g


class TestConstruction:
    def test_empty_graph(self):
        g = LabeledDigraph()
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert g.nodes() == ()
        assert list(g.edges()) == []

    def test_add_nodes_and_edges(self):
        g = build_triangle()
        assert g.num_nodes == 3
        assert g.num_edges == 3
        assert g.label("a") == "X"
        assert g.out_neighbors("a") == ("b",)
        assert g.in_neighbors("a") == ("c",)

    def test_re_add_node_relabels(self):
        g = build_triangle()
        g.add_node("a", "Z")
        assert g.label("a") == "Z"
        assert "a" in g.nodes_with_label("Z")
        assert "a" not in g.nodes_with_label("X")

    def test_add_edge_missing_endpoint(self):
        g = build_triangle()
        with pytest.raises(NodeNotFoundError):
            g.add_edge("a", "zz")
        with pytest.raises(NodeNotFoundError):
            g.add_edge("zz", "a")

    def test_parallel_edge_rejected(self):
        g = build_triangle()
        with pytest.raises(GraphError):
            g.add_edge("a", "b")

    def test_add_edge_if_absent(self):
        g = build_triangle()
        assert g.add_edge_if_absent("a", "b") is False
        assert g.add_edge_if_absent("a", "c") is True
        assert g.num_edges == 4

    def test_self_loop_allowed(self):
        g = build_triangle()
        g.add_edge("a", "a")
        assert g.has_edge("a", "a")
        assert "a" in g.out_neighbors("a")
        assert "a" in g.in_neighbors("a")


class TestRemoval:
    def test_remove_edge(self):
        g = build_triangle()
        g.remove_edge("a", "b")
        assert not g.has_edge("a", "b")
        assert g.num_edges == 2
        g.validate()

    def test_remove_missing_edge(self):
        g = build_triangle()
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge("a", "c")

    def test_remove_node_cleans_edges(self):
        g = build_triangle()
        g.remove_node("b")
        assert g.num_nodes == 2
        assert g.num_edges == 1  # only c -> a survives
        assert not g.has_node("b")
        g.validate()

    def test_remove_missing_node(self):
        g = build_triangle()
        with pytest.raises(NodeNotFoundError):
            g.remove_node("zz")

    def test_remove_node_updates_label_index(self):
        g = build_triangle()
        g.remove_node("b")
        assert g.nodes_with_label("Y") == ()
        assert "Y" not in g.labels()


class TestLabels:
    def test_label_index(self):
        g = build_triangle()
        assert set(g.nodes_with_label("X")) == {"a", "c"}
        assert g.nodes_with_label("missing") == ()
        assert g.label_histogram() == {"X": 2, "Y": 1}

    def test_set_label(self):
        g = build_triangle()
        g.set_label("b", "X")
        assert set(g.nodes_with_label("X")) == {"a", "b", "c"}
        assert "Y" not in g.labels()
        g.validate()

    def test_set_label_missing_node(self):
        g = build_triangle()
        with pytest.raises(NodeNotFoundError):
            g.set_label("zz", "X")

    def test_label_of_missing_node(self):
        g = build_triangle()
        with pytest.raises(NodeNotFoundError):
            g.label("zz")


class TestDerived:
    def test_copy_is_independent(self):
        g = build_triangle()
        clone = g.copy()
        clone.add_node("d", "Z")
        clone.remove_edge("a", "b")
        assert g.num_nodes == 3
        assert g.has_edge("a", "b")
        assert clone.num_nodes == 4

    def test_reverse(self):
        g = build_triangle()
        rev = g.reverse()
        assert rev.has_edge("b", "a")
        assert not rev.has_edge("a", "b")
        assert rev.num_edges == g.num_edges

    def test_to_undirected_symmetric(self):
        g = build_triangle()
        und = g.to_undirected()
        for source, target in g.edges():
            assert und.has_edge(source, target)
            assert und.has_edge(target, source)
        assert und.num_edges == 6

    def test_same_structure(self):
        g = build_triangle()
        assert g.same_structure(g.copy())
        other = g.copy()
        other.remove_edge("a", "b")
        assert not g.same_structure(other)

    def test_neighbors_deduplicated(self):
        g = build_triangle()
        g.add_edge("b", "a")  # now a <-> b
        assert set(g.neighbors("a")) == {"b", "c"}
        assert len(g.neighbors("a")) == 2


class TestProtocols:
    def test_len_contains_iter(self):
        g = build_triangle()
        assert len(g) == 3
        assert "a" in g
        assert "zz" not in g
        assert list(g) == ["a", "b", "c"]

    def test_repr_mentions_counts(self):
        g = build_triangle()
        text = repr(g)
        assert "3 nodes" in text
        assert "3 edges" in text


class TestHelpers:
    def test_degree_sequence(self):
        g = build_triangle()
        assert degree_sequence(g) == [(1, 1), (1, 1), (1, 1)]

    def test_edge_set(self):
        g = build_triangle()
        assert edge_set(g) == {("a", "b"), ("b", "c"), ("c", "a")}

    def test_nodes_sorted(self):
        g = build_triangle()
        assert nodes_sorted(g) == ["a", "b", "c"]

    def test_shared_labels(self):
        g1 = build_triangle()
        g2 = LabeledDigraph()
        g2.add_node(1, "X")
        assert list(check_same_label_sets(g1, g2)) == ["X"]

    def test_sort_adjacency(self):
        g = LabeledDigraph()
        for node in ("a", "c", "b"):
            g.add_node(node, "L")
        g.add_edge("a", "c")
        g.add_edge("a", "b")
        g.sort_adjacency()
        assert g.out_neighbors("a") == ("b", "c")

    def test_validate_passes_on_consistent_graph(self):
        build_triangle().validate()


class TestVersionCounter:
    """The plan cache and the streaming layer both key on ``version``:
    a mutator that forgets to bump serves stale compilations; a no-op
    that bumps evicts warm ones.  Both directions are enforced here for
    *every* public mutator (the meta-test below fails when a new public
    method is neither classified as a mutator nor as read-only)."""

    #: name -> (build fixture graph, invoke mutator once, expected bumps)
    MUTATORS = {
        "add_node": lambda g: g.add_node("z", "X"),
        "add_edge": lambda g: g.add_edge("a", "c"),
        "add_edge_if_absent": lambda g: g.add_edge_if_absent("a", "c"),
        "remove_edge": lambda g: g.remove_edge("a", "b"),
        "remove_node": lambda g: g.remove_node("b"),
        "set_label": lambda g: g.set_label("a", "Z"),
        "sort_adjacency": lambda g: g.sort_adjacency(),
    }

    READ_ONLY = {
        "has_node", "has_edge", "label", "out_neighbors", "in_neighbors",
        "neighbors", "out_degree", "in_degree", "nodes", "edges", "labels",
        "nodes_with_label", "label_histogram", "copy", "reverse",
        "to_undirected", "same_structure", "validate",
    }

    NO_OPS = {
        "add_node (same label)": lambda g: g.add_node("a", "X"),
        "add_edge_if_absent (existing)": lambda g: g.add_edge_if_absent("a", "b"),
        "set_label (same label)": lambda g: g.set_label("a", "X"),
    }

    def test_every_public_mutator_bumps_version(self):
        for name, mutate in self.MUTATORS.items():
            g = build_triangle()
            before = g.version
            mutate(g)
            assert g.version > before, f"{name} did not bump version"

    def test_mutators_bump_exactly_once_per_call(self):
        """One mutator call = one bump (remove_node counts its internal
        edge removals), the contract the streaming DeltaLog relies on to
        detect out-of-band edits."""
        g = build_triangle()
        before = g.version
        g.add_edge("a", "c")
        assert g.version == before + 1
        before = g.version
        g.remove_node("b")  # two incident edges + the node itself
        assert g.version == before + 3

    def test_no_op_calls_do_not_bump(self):
        for name, invoke in self.NO_OPS.items():
            g = build_triangle()
            before = g.version
            invoke(g)
            assert g.version == before, f"{name} bumped version"

    def test_failed_mutations_do_not_bump(self):
        g = build_triangle()
        before = g.version
        with pytest.raises(GraphError):
            g.add_edge("a", "b")  # duplicate
        with pytest.raises(NodeNotFoundError):
            g.add_edge("a", "missing")
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge("a", "c")
        with pytest.raises(NodeNotFoundError):
            g.remove_node("missing")
        with pytest.raises(NodeNotFoundError):
            g.set_label("missing", "Z")
        assert g.version == before

    def test_every_public_method_is_classified(self):
        """Fails when a new public method appears without being listed as
        a mutator (with a bump test above) or as read-only."""
        public = {
            name
            for name in dir(LabeledDigraph)
            if not name.startswith("_")
            and callable(getattr(LabeledDigraph, name))
        }
        unclassified = public - set(self.MUTATORS) - self.READ_ONLY
        assert not unclassified, (
            f"classify new public methods in TestVersionCounter: "
            f"{sorted(unclassified)}"
        )

    def test_version_strictly_increases_under_random_scripts(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @settings(max_examples=30, deadline=None)
        @given(st.lists(st.integers(min_value=0, max_value=6),
                        min_size=1, max_size=25),
               st.randoms(use_true_random=False))
        def run(choices, rng):
            g = build_triangle()
            for choice in choices:
                nodes = list(g.nodes())
                before = g.version
                changed = True
                if choice == 0:
                    g.add_node(f"n{g.version}", "X")
                elif choice == 1 and len(nodes) >= 2:
                    s, t = rng.sample(nodes, 2)
                    changed = g.add_edge_if_absent(s, t)
                elif choice == 2 and g.num_edges:
                    g.remove_edge(*rng.choice(list(g.edges())))
                elif choice == 3 and len(nodes) > 1:
                    g.remove_node(rng.choice(nodes))
                elif choice == 4 and nodes:
                    node = rng.choice(nodes)
                    changed = g.label(node) != "W"
                    g.set_label(node, "W")
                elif choice == 5:
                    g.sort_adjacency()
                else:
                    changed = False
                if changed:
                    assert g.version > before
                else:
                    assert g.version == before
                g.validate()

        run()
