"""Unit tests for the LabeledDigraph data structure."""

import pytest

from repro.exceptions import EdgeNotFoundError, GraphError, NodeNotFoundError
from repro.graph import LabeledDigraph
from repro.graph.digraph import (
    check_same_label_sets,
    degree_sequence,
    edge_set,
    nodes_sorted,
)


def build_triangle():
    g = LabeledDigraph("triangle")
    for node, label in (("a", "X"), ("b", "Y"), ("c", "X")):
        g.add_node(node, label)
    g.add_edge("a", "b")
    g.add_edge("b", "c")
    g.add_edge("c", "a")
    return g


class TestConstruction:
    def test_empty_graph(self):
        g = LabeledDigraph()
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert g.nodes() == ()
        assert list(g.edges()) == []

    def test_add_nodes_and_edges(self):
        g = build_triangle()
        assert g.num_nodes == 3
        assert g.num_edges == 3
        assert g.label("a") == "X"
        assert g.out_neighbors("a") == ("b",)
        assert g.in_neighbors("a") == ("c",)

    def test_re_add_node_relabels(self):
        g = build_triangle()
        g.add_node("a", "Z")
        assert g.label("a") == "Z"
        assert "a" in g.nodes_with_label("Z")
        assert "a" not in g.nodes_with_label("X")

    def test_add_edge_missing_endpoint(self):
        g = build_triangle()
        with pytest.raises(NodeNotFoundError):
            g.add_edge("a", "zz")
        with pytest.raises(NodeNotFoundError):
            g.add_edge("zz", "a")

    def test_parallel_edge_rejected(self):
        g = build_triangle()
        with pytest.raises(GraphError):
            g.add_edge("a", "b")

    def test_add_edge_if_absent(self):
        g = build_triangle()
        assert g.add_edge_if_absent("a", "b") is False
        assert g.add_edge_if_absent("a", "c") is True
        assert g.num_edges == 4

    def test_self_loop_allowed(self):
        g = build_triangle()
        g.add_edge("a", "a")
        assert g.has_edge("a", "a")
        assert "a" in g.out_neighbors("a")
        assert "a" in g.in_neighbors("a")


class TestRemoval:
    def test_remove_edge(self):
        g = build_triangle()
        g.remove_edge("a", "b")
        assert not g.has_edge("a", "b")
        assert g.num_edges == 2
        g.validate()

    def test_remove_missing_edge(self):
        g = build_triangle()
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge("a", "c")

    def test_remove_node_cleans_edges(self):
        g = build_triangle()
        g.remove_node("b")
        assert g.num_nodes == 2
        assert g.num_edges == 1  # only c -> a survives
        assert not g.has_node("b")
        g.validate()

    def test_remove_missing_node(self):
        g = build_triangle()
        with pytest.raises(NodeNotFoundError):
            g.remove_node("zz")

    def test_remove_node_updates_label_index(self):
        g = build_triangle()
        g.remove_node("b")
        assert g.nodes_with_label("Y") == ()
        assert "Y" not in g.labels()


class TestLabels:
    def test_label_index(self):
        g = build_triangle()
        assert set(g.nodes_with_label("X")) == {"a", "c"}
        assert g.nodes_with_label("missing") == ()
        assert g.label_histogram() == {"X": 2, "Y": 1}

    def test_set_label(self):
        g = build_triangle()
        g.set_label("b", "X")
        assert set(g.nodes_with_label("X")) == {"a", "b", "c"}
        assert "Y" not in g.labels()
        g.validate()

    def test_set_label_missing_node(self):
        g = build_triangle()
        with pytest.raises(NodeNotFoundError):
            g.set_label("zz", "X")

    def test_label_of_missing_node(self):
        g = build_triangle()
        with pytest.raises(NodeNotFoundError):
            g.label("zz")


class TestDerived:
    def test_copy_is_independent(self):
        g = build_triangle()
        clone = g.copy()
        clone.add_node("d", "Z")
        clone.remove_edge("a", "b")
        assert g.num_nodes == 3
        assert g.has_edge("a", "b")
        assert clone.num_nodes == 4

    def test_reverse(self):
        g = build_triangle()
        rev = g.reverse()
        assert rev.has_edge("b", "a")
        assert not rev.has_edge("a", "b")
        assert rev.num_edges == g.num_edges

    def test_to_undirected_symmetric(self):
        g = build_triangle()
        und = g.to_undirected()
        for source, target in g.edges():
            assert und.has_edge(source, target)
            assert und.has_edge(target, source)
        assert und.num_edges == 6

    def test_same_structure(self):
        g = build_triangle()
        assert g.same_structure(g.copy())
        other = g.copy()
        other.remove_edge("a", "b")
        assert not g.same_structure(other)

    def test_neighbors_deduplicated(self):
        g = build_triangle()
        g.add_edge("b", "a")  # now a <-> b
        assert set(g.neighbors("a")) == {"b", "c"}
        assert len(g.neighbors("a")) == 2


class TestProtocols:
    def test_len_contains_iter(self):
        g = build_triangle()
        assert len(g) == 3
        assert "a" in g
        assert "zz" not in g
        assert list(g) == ["a", "b", "c"]

    def test_repr_mentions_counts(self):
        g = build_triangle()
        text = repr(g)
        assert "3 nodes" in text
        assert "3 edges" in text


class TestHelpers:
    def test_degree_sequence(self):
        g = build_triangle()
        assert degree_sequence(g) == [(1, 1), (1, 1), (1, 1)]

    def test_edge_set(self):
        g = build_triangle()
        assert edge_set(g) == {("a", "b"), ("b", "c"), ("c", "a")}

    def test_nodes_sorted(self):
        g = build_triangle()
        assert nodes_sorted(g) == ["a", "b", "c"]

    def test_shared_labels(self):
        g1 = build_triangle()
        g2 = LabeledDigraph()
        g2.add_node(1, "X")
        assert list(check_same_label_sets(g1, g2)) == ["X"]

    def test_sort_adjacency(self):
        g = LabeledDigraph()
        for node in ("a", "c", "b"):
            g.add_node(node, "L")
        g.add_edge("a", "c")
        g.add_edge("a", "b")
        g.sort_adjacency()
        assert g.out_neighbors("a") == ("b", "c")

    def test_validate_passes_on_consistent_graph(self):
        build_triangle().validate()
