"""Replication tests: WAL shipping, bounded staleness, chaos failover.

The replication contract extends durability's bitwise-parity bar across
*machines*: a follower that bootstrapped from the primary's warm
snapshot payloads and tailed its WAL answers every read with exactly
the floats the primary would produce at the follower's watermark --
because both sides run the identical
:class:`~repro.service.recovery.WalReplayer` over the identical total
order of records.

Suites, mirroring ``tests/test_durability.py``'s two speeds:

- framing + ``read_wal_since`` contract (including the property test:
  a reader at any position sees a contiguous suffix or a typed
  compacted-away signal, concurrent with appends and rotations);
- in-process primary + replica ``ServerThread`` pairs: bootstrap
  parity, streamed-mutation parity, read-only redirects, bounded
  staleness, blip-resume vs compaction-re-bootstrap, replica-set
  routing;
- a kill-and-recover suite SIGKILLing real ``python -m repro serve``
  subprocesses on *both* sides of the stream (follower mid-apply,
  primary mid-ship) and checking catch-up parity over the wire.
"""

import asyncio
import os
import random
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.core import FSimConfig
from repro.exceptions import (
    ReplicaLaggingError,
    ReplicaReadOnlyError,
    ServiceError,
    WalCompactedError,
    WalError,
)
from repro.graph.digraph import LabeledDigraph
from repro.graph.generators import random_graph, uniform_labels
from repro.graph.io import save_graph
from repro.service import (
    FSimServer,
    GraphStore,
    ReplicaSetClient,
    ReplicationHub,
    ServerThread,
    ServiceClient,
    WriteAheadLog,
    read_wal_since,
    recover_store,
)
from repro.service.client import wire_scores
from repro.service.replication import decode_frame, encode_frame
from repro.service.wal import WAL_FILENAME, FaultInjector
from repro.simulation import Variant
from repro.streaming.delta import DeltaOp

REPO_ROOT = Path(__file__).resolve().parents[1]


# ----------------------------------------------------------------------
# shared fixtures (the durability suite's canonical builders)
# ----------------------------------------------------------------------
def make_graph(num_nodes=18, num_edges=45, labels=3, seed=5):
    """Deterministic graph in canonical all-nodes-then-all-edges order
    (bitwise-reproducible by every durable rebuild path)."""
    generated = random_graph(
        num_nodes, num_edges,
        uniform_labels(num_nodes, labels, seed=seed), seed=seed + 1,
    )
    graph = LabeledDigraph(generated.name)
    for node in generated.nodes():
        graph.add_node(node, generated.label(node))
    for source, target in generated.edges():
        graph.add_edge(source, target)
    return graph


def numpy_config(**overrides):
    options = dict(variant=Variant.B, label_function="indicator",
                   backend="numpy")
    options.update(overrides)
    return FSimConfig(**options)


def register_durable(store, name="g", graph=None):
    if graph is None:
        graph = make_graph()
    source = {
        "nodes": [[node, graph.label(node)] for node in graph.nodes()],
        "edges": [list(edge) for edge in graph.edges()],
    }
    store.register(name, graph, source=source)
    return graph


def mutation_batches(count=6):
    """Always-valid batches: each adds a fresh node wired to an existing
    one, so replay/shipping order is the only interesting variable."""
    return [[("add_node", 1000 + index, index % 3),
             ("add_edge", 1000 + index, index % 18)]
            for index in range(count)]


def wait_for(predicate, timeout=30.0, interval=0.05, message="condition"):
    deadline = time.time() + timeout
    while time.time() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {message}")


def free_port():
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def tail_stats(client):
    return client.stats()["replication"]["tail"]


def start_primary(tmp_path, sync="always", port=None):
    store = GraphStore(default_config=numpy_config(),
                       wal=WriteAheadLog(tmp_path, sync=sync))
    register_durable(store)
    kwargs = {"window": 0.001}
    if port is not None:
        kwargs["port"] = port
    return ServerThread(store, **kwargs).start()


def start_replica(primary_port, port=None):
    store = GraphStore(default_config=numpy_config())
    kwargs = {"window": 0.001,
              "replicate_from": f"127.0.0.1:{primary_port}"}
    if port is not None:
        kwargs["port"] = port
    return ServerThread(store, **kwargs).start()


def wait_caught_up(replica_client, seq, timeout=30.0):
    def _caught_up():
        stats = tail_stats(replica_client)
        return stats["connected"] and stats["applied_seq"] >= seq \
            and stats["lag_records"] == 0
    wait_for(_caught_up, timeout=timeout,
             message=f"replica catch-up to seq {seq}")
    return tail_stats(replica_client)


# ----------------------------------------------------------------------
# stream framing
# ----------------------------------------------------------------------
class TestFrameCodec:
    def test_roundtrip(self):
        frame = {"kind": "mutate", "graph": "g",
                 "ops": [["add_edge", 1, 2]], "seq": 7}
        assert decode_frame(encode_frame(frame)) == frame

    def test_heartbeat_is_a_valid_frame(self):
        line = encode_frame({"kind": "heartbeat", "head": 9, "ts": 1.5})
        assert decode_frame(line)["head"] == 9

    def test_truncated_frame_is_torn(self):
        line = encode_frame({"kind": "unregister", "graph": "g", "seq": 1})
        for cut in (0, 4, 9, len(line) // 2, len(line) - 2):
            with pytest.raises(WalError):
                decode_frame(line[:cut])

    def test_corrupted_body_fails_crc(self):
        line = encode_frame({"kind": "unregister", "graph": "g", "seq": 1})
        with pytest.raises(WalError, match="CRC"):
            decode_frame(FaultInjector.corrupt(line))

    def test_unknown_kind_rejected(self):
        line = encode_frame({"kind": "format-disk", "seq": 1})
        with pytest.raises(WalError, match="kind"):
            decode_frame(line)


# ----------------------------------------------------------------------
# the tailing contract of read_wal_since
# ----------------------------------------------------------------------
class TestWalSinceContract:
    def test_every_position_contiguous_or_typed_compacted(self, tmp_path):
        wal = WriteAheadLog(tmp_path, sync="always")
        for _ in range(10):
            wal.append({"kind": "unregister", "graph": "a"})
        wal.rotate({"kind": "checkpoint", "graphs": {}, "rids": {}})
        for _ in range(5):  # checkpoint took seq 11; suffix is 12..16
            wal.append({"kind": "unregister", "graph": "b"})
        wal.close()
        path = tmp_path / WAL_FILENAME
        for after in range(0, 10):
            with pytest.raises(WalCompactedError) as excinfo:
                read_wal_since(path, after)
            assert excinfo.value.first_seq == 11
        for after in range(10, 18):
            seqs = [r["seq"] for r in read_wal_since(path, after)]
            assert seqs == list(range(after + 1, 17)), after

    def test_concurrent_append_rotate_never_torn_or_skipped(self, tmp_path):
        """Property: under concurrent appends and compactions, a reader
        positioned at ANY sequence number either streams a contiguous
        suffix starting at ``after + 1`` or gets the typed
        :class:`WalCompactedError` -- never a gap, never torn data."""
        wal = WriteAheadLog(tmp_path, sync="batch")
        path = tmp_path / WAL_FILENAME
        stop = threading.Event()
        failures = []

        def writer():
            count = 0
            try:
                while not stop.is_set():
                    wal.append({"kind": "unregister", "graph": "g"})
                    count += 1
                    if count % 25 == 0:
                        wal.rotate({"kind": "checkpoint", "graphs": {},
                                    "rids": {}})
            except Exception as exc:  # pragma: no cover - fails the test
                failures.append(exc)

        def reader(seed):
            rng = random.Random(seed)
            try:
                while not stop.is_set():
                    after = rng.randrange(0, max(wal.last_seq, 1) + 2)
                    try:
                        records = read_wal_since(path, after)
                    except WalCompactedError:
                        continue  # the typed signal: re-bootstrap
                    seqs = [r["seq"] for r in records]
                    if seqs != list(range(after + 1, after + 1 + len(seqs))):
                        failures.append(AssertionError(
                            f"after={after}: non-contiguous suffix {seqs}"
                        ))
                        stop.set()
            except Exception as exc:  # pragma: no cover - fails the test
                failures.append(exc)
                stop.set()

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader, args=(seed,))
            for seed in (1, 2)
        ]
        for thread in threads:
            thread.start()
        time.sleep(1.0)
        stop.set()
        for thread in threads:
            thread.join(timeout=10)
        wal.close()
        assert not failures, failures[0]
        assert wal.last_seq > 25  # the test actually exercised rotation


# ----------------------------------------------------------------------
# primary-side fault plumbing
# ----------------------------------------------------------------------
class _SinkWriter:
    def __init__(self):
        self.data = b""

    def write(self, chunk):
        self.data += chunk

    async def drain(self):
        pass


class TestTornShip:
    def test_torn_ship_writes_undecodable_prefix(self, tmp_path):
        """An injected torn-ship leaves half a frame on the wire; the
        follower's decoder must classify it as torn (reconnect), never
        as data."""
        store = GraphStore(
            default_config=numpy_config(),
            wal=WriteAheadLog(tmp_path, sync="always",
                              fault_injector=FaultInjector("torn-ship:1")),
        )
        hub = ReplicationHub(store)
        token, _queue = hub.subscribe("test-peer")
        writer = _SinkWriter()
        record = {"kind": "unregister", "graph": "g", "seq": 1}

        async def _ship_once():
            await hub._send_record(writer, asyncio.Lock(),
                                   hub.followers[token], record, 0)

        with pytest.raises(ConnectionResetError, match="torn-ship"):
            asyncio.run(_ship_once())
        assert 0 < len(writer.data) < len(encode_frame(record))
        with pytest.raises(WalError):
            decode_frame(writer.data)
        store.close()


# ----------------------------------------------------------------------
# in-process primary + replica pairs
# ----------------------------------------------------------------------
class TestReplicaBasics:
    def test_bootstrap_and_streaming_parity(self, tmp_path):
        primary = start_primary(tmp_path)
        replica = start_replica(primary.port)
        try:
            with ServiceClient(port=primary.port, timeout=30.0) as pc, \
                    ServiceClient(port=replica.port, timeout=30.0) as rc:
                stats = wait_caught_up(rc, seq=1)
                assert stats["bootstraps"] == 1
                assert rc.graphs() == ["g"]
                assert wire_scores(rc.fsim("g")) == \
                    wire_scores(pc.fsim("g"))

                batches = mutation_batches(4)
                for index, ops in enumerate(batches):
                    pc.mutate("g", ops, rid=f"rid-{index}")
                stats = wait_caught_up(rc, seq=1 + len(batches))
                assert stats["applied_records"] == len(batches)
                assert stats["bootstraps"] == 1  # streaming, not re-syncing
                assert wire_scores(rc.fsim("g")) == \
                    wire_scores(pc.fsim("g"))
                assert rc.stats()["graphs"]["g"]["version"] == \
                    pc.stats()["graphs"]["g"]["version"]

                # Both sides report their role and are healthy.
                assert pc.stats()["replication"]["role"] == "primary"
                assert len(pc.stats()["replication"]["followers"]) == 1
                assert rc.stats()["replication"]["role"] == "replica"
                assert pc.stats()["health"]["status"] == "ok"
                assert rc.stats()["health"]["status"] == "ok"
        finally:
            replica.stop()
            primary.stop()

    def test_replica_rejects_writes_with_redirect(self, tmp_path):
        primary = start_primary(tmp_path)
        replica = start_replica(primary.port)
        try:
            with ServiceClient(port=replica.port, timeout=30.0) as rc:
                wait_caught_up(rc, seq=1)
                with pytest.raises(ReplicaReadOnlyError) as excinfo:
                    rc.mutate("g", [("add_node", 999, 0)])
                assert excinfo.value.primary == f"127.0.0.1:{primary.port}"
                with pytest.raises(ReplicaReadOnlyError):
                    rc.register("h", nodes=[[0, 0]], edges=[])
        finally:
            replica.stop()
            primary.stop()

    def test_bounded_staleness_and_degraded_health(self, tmp_path):
        primary = start_primary(tmp_path)
        replica = start_replica(primary.port)
        rc = ServiceClient(port=replica.port, timeout=30.0)
        try:
            wait_caught_up(rc, seq=1)
            # Caught up: the tightest bound is satisfiable.
            fresh = rc.fsim("g", max_lag=0)
            assert fresh["converged"] is not None

            primary.stop()  # the primary goes away; staleness grows
            wait_for(lambda: not tail_stats(rc)["connected"],
                     message="tail to notice the dead primary")
            time.sleep(0.3)  # let wall-clock staleness accrue
            with pytest.raises(ReplicaLaggingError) as excinfo:
                rc.fsim("g", max_lag_seconds=0.05)
            assert excinfo.value.lag_seconds is None \
                or excinfo.value.lag_seconds > 0.05
            # Unbounded reads still serve (stale-tolerant readers).
            assert wire_scores(rc.fsim("g")) == wire_scores(fresh)
            health = rc.stats()["health"]
            assert health["status"] == "degraded"
            assert any("disconnected" in reason
                       for reason in health["reasons"])
        finally:
            rc.close()
            replica.stop()

    def test_replica_must_not_keep_its_own_wal(self, tmp_path):
        store = GraphStore(default_config=numpy_config(),
                           wal=WriteAheadLog(tmp_path))
        with pytest.raises(ServiceError, match="replica"):
            FSimServer(store, replicate_from="127.0.0.1:1")
        store.close()

    def test_bad_primary_address_is_typed(self):
        store = GraphStore(default_config=numpy_config())
        with pytest.raises(ServiceError, match="HOST:PORT"):
            FSimServer(store, replicate_from="not-an-address")
        store.close()


class TestReplicaResilience:
    def test_blip_resumes_from_watermark_without_rebootstrap(
            self, tmp_path, monkeypatch):
        """An injected partition drops the stream mid-tail; the follower
        reconnects and resumes with ``after=applied_seq`` -- the
        bootstrap count must stay at 1."""
        primary = start_primary(tmp_path)
        monkeypatch.setenv(FaultInjector.ENV_VAR, "partition:2")
        replica = start_replica(primary.port)
        monkeypatch.delenv(FaultInjector.ENV_VAR)
        try:
            with ServiceClient(port=primary.port, timeout=30.0) as pc, \
                    ServiceClient(port=replica.port, timeout=30.0) as rc:
                wait_caught_up(rc, seq=1)
                batches = mutation_batches(3)
                for index, ops in enumerate(batches):
                    pc.mutate("g", ops, rid=f"rid-{index}")
                # Frame 2 trips the partition; the tail must heal past it.
                stats = wait_caught_up(rc, seq=1 + len(batches))
                assert stats["reconnects"] >= 1
                assert stats["bootstraps"] == 1
                assert wire_scores(rc.fsim("g")) == \
                    wire_scores(pc.fsim("g"))
        finally:
            replica.stop()
            primary.stop()

    def test_compaction_while_away_forces_rebootstrap(self, tmp_path):
        """When the primary compacted the follower's resume range away,
        the follower re-bootstraps from snapshots instead of failing."""
        port = free_port()
        primary = start_primary(tmp_path, port=port)
        replica = start_replica(port)
        rc = ServiceClient(port=replica.port, timeout=30.0)
        try:
            with ServiceClient(port=port, timeout=30.0) as pc:
                pc.mutate("g", [("add_node", 500, 1)])
            wait_caught_up(rc, seq=2)
            assert tail_stats(rc)["bootstraps"] == 1

            primary.stop()  # follower starts its reconnect loop
            # Offline: advance and compact, folding seq <= 3 into the
            # snapshot -- the follower's watermark (2) is now history.
            store, _report = recover_store(tmp_path, config=numpy_config())
            store.mutate("g", [DeltaOp("add_node", 501, 2)])
            store.compact()
            with pytest.raises(WalCompactedError):
                read_wal_since(tmp_path / WAL_FILENAME, 2)
            restarted = ServerThread(store, window=0.001,
                                     port=port).start()
            try:
                stats = wait_caught_up(rc, seq=4)
                assert stats["bootstraps"] == 2
                with ServiceClient(port=port, timeout=30.0) as pc:
                    assert wire_scores(rc.fsim("g")) == \
                        wire_scores(pc.fsim("g"))
            finally:
                restarted.stop()
        finally:
            rc.close()
            replica.stop()


# ----------------------------------------------------------------------
# replica-set routing
# ----------------------------------------------------------------------
class TestReplicaSetClient:
    def test_reads_scale_writes_redirect_failover_heals(self, tmp_path):
        primary = start_primary(tmp_path)
        replica_a = start_replica(primary.port)
        replica_b = start_replica(primary.port)
        with ServiceClient(port=replica_a.port, timeout=30.0) as ra, \
                ServiceClient(port=replica_b.port, timeout=30.0) as rb:
            wait_caught_up(ra, seq=1)
            wait_caught_up(rb, seq=1)

        async def _exercise():
            client = ReplicaSetClient(
                f"127.0.0.1:{primary.port}",
                [f"127.0.0.1:{replica_a.port}",
                 f"127.0.0.1:{replica_b.port}"],
                timeout=30.0, cooldown=0.2,
            )
            try:
                expected = await client.primary.fsim("g")
                # Reads round-robin across healthy replicas, values
                # identical to the primary's.
                for _ in range(4):
                    wire = await client.fsim("g")
                    assert wire_scores(wire) == wire_scores(expected)
                assert client.stats["replica_reads"] == 4
                assert client.stats["primary_reads"] == 0
                assert all(e["reads"] == 2 for e in client._replicas)

                health = await client.probe()
                assert all(health.values())

                # Writes always hit the primary (never a redirect dance).
                await client.mutate("g", [("add_node", 700, 1)], rid="w1")
                assert client.stats["writes"] == 1

                # One replica dies: reads fail over to its healthy peer.
                replica_a.stop()
                for _ in range(4):
                    wire = await client.fsim("g")
                assert client.stats["primary_reads"] == 0

                # Both replicas dead: reads fall back to the primary.
                replica_b.stop()
                wire = await client.fsim("g")
                assert wire_scores(wire) is not None
                assert client.stats["primary_reads"] >= 1
                assert client.stats["failovers"] >= 1
                health = await client.probe()
                assert not any(health.values())
            finally:
                await client.close()

        try:
            asyncio.run(_exercise())
        finally:
            replica_a.stop()
            replica_b.stop()
            primary.stop()

    def test_lagging_replica_rejected_set_falls_to_primary(self, tmp_path):
        """A replica that cannot prove freshness bounces the bounded
        read; the set client retries against the primary and the caller
        never sees the staleness error."""
        primary = start_primary(tmp_path)
        replica = start_replica(primary.port)
        rc = ServiceClient(port=replica.port, timeout=30.0)
        try:
            wait_caught_up(rc, seq=1)
            primary_address = f"127.0.0.1:{primary.port}"
            replica_address = f"127.0.0.1:{replica.port}"
            primary.stop()
            wait_for(lambda: not tail_stats(rc)["connected"],
                     message="tail disconnect")
            time.sleep(0.3)

            store, _report = recover_store(tmp_path, config=numpy_config())
            restarted = ServerThread(
                store, window=0.001,
                port=int(primary_address.rsplit(":", 1)[1])).start()

            async def _exercise():
                client = ReplicaSetClient(
                    primary_address, [replica_address],
                    timeout=30.0, max_lag_seconds=0.05, cooldown=5.0,
                )
                try:
                    wire = await client.fsim("g")
                    assert wire_scores(wire)
                    assert client.stats["primary_reads"] >= 1
                    assert client.stats["failovers"] >= 1
                    assert client._replicas[0]["failures"] >= 1
                finally:
                    await client.close()

            try:
                asyncio.run(_exercise())
            finally:
                restarted.stop()
        finally:
            rc.close()
            replica.stop()


# ----------------------------------------------------------------------
# kill -9 real processes on either side of the stream
# ----------------------------------------------------------------------
class TestKillAndRecoverReplication:
    @staticmethod
    def _spawn(extra_args, fault=None):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env.pop(FaultInjector.ENV_VAR, None)
        if fault:
            env[FaultInjector.ENV_VAR] = fault
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--window", "0.001",
             "--variant", "b", "--label-function", "indicator",
             "--backend", "numpy"] + extra_args,
            env=env, cwd=str(REPO_ROOT),
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        port = None
        deadline = time.time() + 60.0
        while time.time() < deadline:
            line = process.stdout.readline()
            if not line:
                break
            if line.startswith("# ready on "):
                port = int(line.rsplit(":", 1)[1])
                break
        if port is None:
            process.kill()
            raise AssertionError("server never printed its ready line")
        return process, port

    def _spawn_primary(self, tmp_path, graph_path, port, fault=None):
        return self._spawn(
            ["--graph", f"g={graph_path}",
             "--wal-dir", str(tmp_path / "wal"),
             "--wal-sync", "always",
             "--port", str(port)],
            fault=fault,
        )

    def _spawn_follower(self, primary_port, fault=None):
        return self._spawn(
            ["--replicate-from", f"127.0.0.1:{primary_port}",
             "--port", "0"],
            fault=fault,
        )

    @staticmethod
    def _reap(process, timeout=60):
        process.stdout.close()
        try:
            return process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(timeout=10)
            raise AssertionError("server subprocess failed to exit")

    def test_sigkill_follower_mid_apply_restarts_bitwise(self, tmp_path):
        graph_path = tmp_path / "g.txt"
        save_graph(make_graph(), graph_path)
        batches = [[("add_node", 4000 + i, i % 3)] for i in range(6)]
        port = free_port()

        primary_proc, _ = self._spawn_primary(tmp_path, graph_path, port)
        follower_proc, follower_port = self._spawn_follower(
            port, fault="crash-mid-apply:3")
        try:
            pc = ServiceClient(port=port, timeout=30.0)
            with ServiceClient(port=follower_port, timeout=30.0) as rc:
                wait_caught_up(rc, seq=1)
            # Every mutation acks on the primary; the follower's injected
            # fault kills it (exit 137) while applying the third frame.
            for index, ops in enumerate(batches):
                pc.mutate("g", ops, rid=f"rid-{index}")
            wait_for(lambda: follower_proc.poll() is not None,
                     message="follower crash")
            assert self._reap(follower_proc) == 137

            # A fresh follower bootstraps from the primary's live state
            # and answers bitwise-identically.
            follower_proc, follower_port = self._spawn_follower(port)
            with ServiceClient(port=follower_port, timeout=30.0) as rc:
                wait_caught_up(rc, seq=1 + len(batches))
                assert wire_scores(rc.fsim("g")) == \
                    wire_scores(pc.fsim("g"))
                assert rc.stats()["graphs"]["g"]["version"] == \
                    pc.stats()["graphs"]["g"]["version"]
                # Acked mutations applied exactly once everywhere: the
                # primary dedups every retried rid, and the follower's
                # version already reflects a single application.
                for index, ops in enumerate(batches):
                    assert pc.mutate("g", ops,
                                     rid=f"rid-{index}").get("deduped")
            pc.shutdown()
            pc.close()
        finally:
            for process in (follower_proc, primary_proc):
                if process.poll() is None:
                    process.kill()
                self._reap(process)

    def test_sigkill_primary_mid_ship_follower_resumes(self, tmp_path):
        from repro.exceptions import ServiceConnectionError

        graph_path = tmp_path / "g.txt"
        save_graph(make_graph(), graph_path)
        batches = [[("add_node", 4000 + i, i % 3)] for i in range(6)]
        port = free_port()

        primary_proc, _ = self._spawn_primary(
            tmp_path, graph_path, port, fault="crash-mid-ship:3")
        follower_proc, follower_port = self._spawn_follower(port)
        rc = ServiceClient(port=follower_port, timeout=30.0)
        try:
            wait_caught_up(rc, seq=1)
            pc = ServiceClient(port=port, timeout=30.0)
            acked, unacked = [], []
            for index, ops in enumerate(batches):
                try:
                    pc.mutate("g", ops, rid=f"rid-{index}")
                    acked.append(index)
                except ServiceConnectionError:
                    unacked.append(index)
                    break
            pc.close()
            wait_for(lambda: primary_proc.poll() is not None,
                     message="primary crash")
            assert self._reap(primary_proc) == 137
            unacked.extend(range((unacked or acked)[-1] + 1, len(batches)))
            unacked = sorted(set(unacked) - set(acked))

            # The follower survives the dead primary (degraded, not
            # down) and keeps serving unbounded reads.
            wait_for(lambda: not tail_stats(rc)["connected"],
                     message="follower to notice the dead primary")
            assert rc.fsim("g")["converged"] is not None
            bootstraps_before = tail_stats(rc)["bootstraps"]

            # Restart the primary over the same WAL; the follower
            # reconnects and resumes from its watermark -- the intact
            # log means no re-bootstrap.
            primary_proc, _ = self._spawn_primary(tmp_path, graph_path,
                                                  port)
            pc = ServiceClient(port=port, timeout=30.0)
            # The well-behaved client resends with original rids:
            # acked ones dedup, unacked apply exactly once.
            for index in acked:
                assert pc.mutate("g", batches[index],
                                 rid=f"rid-{index}").get("deduped")
            for index in unacked:
                pc.mutate("g", batches[index], rid=f"rid-{index}")
            wait_caught_up(rc, seq=1 + len(batches))
            assert tail_stats(rc)["bootstraps"] == bootstraps_before
            assert wire_scores(rc.fsim("g")) == wire_scores(pc.fsim("g"))
            assert rc.stats()["graphs"]["g"]["version"] == \
                pc.stats()["graphs"]["g"]["version"]
            pc.shutdown()
            pc.close()
        finally:
            rc.close()
            for process in (follower_proc, primary_proc):
                if process.poll() is None:
                    process.kill()
                self._reap(process)
