"""Tests for the unified executor runtime (repro.runtime).

The load-bearing contract: every executor -- serial, fork-inheritance,
persistent shared-memory -- produces **bitwise identical**
``FSimResult``s (scores, iterations, per-iteration deltas) on both
compute backends.  Plus the runtime's resource behavior: lazy pool
creation (tiny workloads never spawn a process), pool reuse across
queries, and graceful degradation where fork is unavailable.
"""

import warnings

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import FSimConfig, FSimEngine, fsim_matrix
from repro.core.api import fsim_matrix_many
from repro.core.topk import TopKSearch
from repro.exceptions import ConfigError
from repro.graph.generators import random_graph, uniform_labels
from repro.runtime import (
    ForkExecutor,
    SerialExecutor,
    SharedMemoryExecutor,
    get_executor,
    resolve_executor,
    shutdown_executors,
)
from repro.runtime import executor as executor_module
from repro.simulation import Variant


@pytest.fixture(scope="module")
def shm_executor():
    """One persistent shared-memory executor shared by the module
    (threshold lowered so small test graphs actually hit the pool)."""
    ex = SharedMemoryExecutor(2, min_parallel_upd=1, min_parallel_pairs=1)
    yield ex
    ex.close()


@pytest.fixture(scope="module")
def fork_executor():
    ex = ForkExecutor(2, min_parallel_upd=1, min_parallel_pairs=1)
    yield ex
    ex.close()


def assert_identical(serial, parallel):
    """Bitwise result equality: scores, trajectory and metadata."""
    assert serial.scores == parallel.scores
    assert serial.iterations == parallel.iterations
    assert serial.converged == parallel.converged
    assert serial.deltas == parallel.deltas
    assert serial.num_candidates == parallel.num_candidates


# ----------------------------------------------------------------------
# bitwise parity across executors (property test, both backends)
# ----------------------------------------------------------------------
class TestExecutorParity:
    @settings(
        max_examples=6, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        num_nodes=st.integers(min_value=8, max_value=24),
        num_labels=st.integers(min_value=2, max_value=4),
        seed=st.integers(min_value=0, max_value=10_000),
        backend=st.sampled_from(["python", "numpy"]),
        variant=st.sampled_from([Variant.S, Variant.B, Variant.BJ]),
    )
    def test_bitwise_identical_results(
        self, shm_executor, fork_executor,
        num_nodes, num_labels, seed, backend, variant,
    ):
        graph = random_graph(
            num_nodes, 2 * num_nodes,
            uniform_labels(num_nodes, num_labels, seed=seed), seed=seed + 1,
        )
        cfg = FSimConfig(
            variant=variant, label_function="indicator", backend=backend,
        )
        serial = FSimEngine(graph, graph, cfg).run()
        for executor in (shm_executor, fork_executor):
            parallel = FSimEngine(graph, graph, cfg).run(executor=executor)
            assert_identical(serial, parallel)

    def test_parity_with_pruning(self, medium_random_graph, shm_executor):
        cfg = FSimConfig(
            variant=Variant.BJ, label_function="indicator",
            theta=1.0, use_upper_bound=True, alpha=0.4, backend="numpy",
        )
        g = medium_random_graph
        serial = FSimEngine(g, g, cfg).run()
        parallel = FSimEngine(g, g, cfg).run(executor=shm_executor)
        assert_identical(serial, parallel)

    def test_parity_with_pinned_pairs(self, medium_random_graph,
                                      fork_executor, shm_executor):
        g = medium_random_graph
        node = g.nodes()[0]
        for backend in ("python", "numpy"):
            cfg = FSimConfig(
                variant=Variant.S, label_function="indicator",
                pinned_pairs={(node, node): 1.0}, backend=backend,
            )
            serial = FSimEngine(g, g, cfg).run()
            for executor in (fork_executor, shm_executor):
                parallel = FSimEngine(g, g, cfg).run(executor=executor)
                assert_identical(serial, parallel)
                assert parallel.scores[(node, node)] == 1.0

    def test_num_candidates_excludes_foreign_pinned_pairs(
        self, medium_random_graph, fork_executor
    ):
        """A pinned pair outside the candidate store must not inflate
        ``num_candidates`` on the parallel path (the legacy runner
        counted every pinned pair as a candidate)."""
        g = medium_random_graph
        # theta=1 with indicator labels: only equal-label pairs are
        # candidates; pin a pair of differently-labeled nodes.
        nodes = g.nodes()
        foreign = next(
            (u, v)
            for u in nodes for v in nodes
            if g.label(u) != g.label(v)
        )
        cfg = FSimConfig(
            variant=Variant.S, label_function="indicator", theta=1.0,
            pinned_pairs={foreign: 0.5}, backend="python",
        )
        serial = FSimEngine(g, g, cfg).run()
        parallel = FSimEngine(g, g, cfg).run(executor=fork_executor)
        assert parallel.num_candidates == serial.num_candidates
        assert parallel.scores[foreign] == 0.5


# ----------------------------------------------------------------------
# batched and streaming layers share the runtime
# ----------------------------------------------------------------------
class TestSharedRuntimeLayers:
    def test_topk_parity_both_backends(self, medium_random_graph,
                                       shm_executor):
        g = medium_random_graph
        queries = g.nodes()[:4]
        for backend in ("python", "numpy"):
            cfg = FSimConfig(
                variant=Variant.S, label_function="indicator",
                backend=backend,
            )
            search = TopKSearch(g, g, cfg)
            serial = search.search_many(queries, 3)
            parallel = search.search_many(queries, 3, executor=shm_executor)
            for a, b in zip(serial, parallel):
                assert a.partners == b.partners
                assert a.iterations == b.iterations
                assert a.certified == b.certified

    def test_query_sharding_parity(self, medium_random_graph, shm_executor,
                                   fork_executor):
        data = medium_random_graph
        queries = [
            random_graph(8, 14, uniform_labels(8, 3, seed=s), seed=s)
            for s in range(4)
        ]
        serial = fsim_matrix_many(
            queries, data, "s", label_function="indicator"
        )
        for executor in (fork_executor, shm_executor):
            parallel = fsim_matrix_many(
                queries, data, "s", label_function="indicator",
                executor=executor,
            )
            for a, b in zip(serial, parallel):
                assert_identical(a, b)

    def test_shared_memory_pool_survives_batch_and_queries(
        self, medium_random_graph, shm_executor
    ):
        """One persistent pool serves repeated queries and batches."""
        g = medium_random_graph
        cfg = FSimConfig(
            variant=Variant.S, label_function="indicator", backend="numpy",
        )
        for _ in range(2):
            FSimEngine(g, g, cfg).run(executor=shm_executor)
        TopKSearch(g, g, cfg).search_many(g.nodes()[:3], 2,
                                          executor=shm_executor)
        assert shm_executor.pools_created == 1

    def test_streaming_session_on_executor(self, shm_executor):
        from repro.core.plan import clear_plan_caches, lower_graph
        from repro.streaming import IncrementalFSim

        labels = uniform_labels(60, 4, seed=1)
        base = random_graph(60, 150, labels, seed=2)
        evolving = base.copy()
        cfg = FSimConfig(
            variant=Variant.B, label_function="indicator", theta=1.0,
            backend="numpy",
        )
        clear_plan_caches()
        session = IncrementalFSim(evolving, base, cfg,
                                  executor=shm_executor)
        session.compute()
        nodes = evolving.nodes()
        session.log1.add_edge_if_absent(nodes[0], nodes[1])
        warm = session.compute()
        clear_plan_caches()
        lower_graph(base)
        cold = fsim_matrix(evolving, base, config=cfg)
        assert warm.scores == cold.scores
        assert warm.iterations == cold.iterations
        assert warm.deltas == cold.deltas


# ----------------------------------------------------------------------
# resource behavior: lazy pools, thresholds
# ----------------------------------------------------------------------
class TestPoolLifetime:
    def test_no_pool_spawn_for_tiny_workloads(self, small_random_graph):
        """A run whose sweeps all stay below the parallel threshold must
        never fork/spawn a pool (the legacy runner forked one up
        front)."""
        g = small_random_graph
        cfg = FSimConfig(
            variant=Variant.S, label_function="indicator", backend="numpy",
        )
        shm = SharedMemoryExecutor(4)  # default threshold
        fork = ForkExecutor(4)
        try:
            serial = FSimEngine(g, g, cfg).run()
            for executor in (shm, fork):
                parallel = FSimEngine(g, g, cfg).run(executor=executor)
                assert_identical(serial, parallel)
            assert not shm.pool_started
            assert shm.pools_created == 0
            assert fork.pools_created == 0
        finally:
            shm.close()
            fork.close()

    def test_no_pool_spawn_for_tiny_dict_workloads(self):
        """The dict-engine pair path has the same lazy-pool guarantee:
        a workload below the pair threshold never pickles the engine or
        spawns a pool."""
        # 7x7 = 49 candidate pairs, below MIN_PARALLEL_PAIRS (64).
        g = random_graph(7, 12, uniform_labels(7, 2, seed=3), seed=4)
        cfg = FSimConfig(
            variant=Variant.S, label_function="indicator", backend="python",
        )
        shm = SharedMemoryExecutor(4)  # default thresholds
        fork = ForkExecutor(4)
        try:
            serial = FSimEngine(g, g, cfg).run()
            for executor in (shm, fork):
                parallel = FSimEngine(g, g, cfg).run(executor=executor)
                assert_identical(serial, parallel)
            assert not shm.pool_started
            assert shm.pools_created == 0
            assert fork.pools_created == 0
        finally:
            shm.close()
            fork.close()

    def test_serial_resolution(self):
        cfg = FSimConfig()
        assert isinstance(resolve_executor(cfg), SerialExecutor)
        assert isinstance(resolve_executor(cfg, workers=1), SerialExecutor)
        assert isinstance(
            resolve_executor(cfg, workers=4, executor="serial"),
            SerialExecutor,
        )

    def test_registry_caches_instances(self):
        first = get_executor("shared_memory", 3)
        second = get_executor("shared_memory", 3)
        assert first is second
        assert get_executor("shared_memory", 2) is not first

    def test_executor_instance_passes_through(self, shm_executor):
        assert resolve_executor(None, 8, shm_executor) is shm_executor


# ----------------------------------------------------------------------
# platform degradation
# ----------------------------------------------------------------------
class TestSpawnFallback:
    def test_fork_request_degrades_to_shared_memory(self, monkeypatch):
        """Platforms without fork get the (spawn-capable) shared-memory
        executor instead of a warning plus serial execution."""
        monkeypatch.setenv(executor_module.START_METHOD_ENV, "spawn")
        shutdown_executors()
        try:
            resolved = resolve_executor(None, workers=2, executor="fork")
            assert resolved.kind == "shared_memory"
            resolved = resolve_executor(None, workers=2, executor="auto",
                                        workload="queries")
            assert resolved.kind == "shared_memory"
        finally:
            shutdown_executors()

    def test_spawn_pool_parity(self, medium_random_graph):
        """The shared-memory executor is correct under a spawn pool."""
        g = medium_random_graph
        cfg = FSimConfig(
            variant=Variant.S, label_function="indicator", backend="numpy",
        )
        serial = FSimEngine(g, g, cfg).run()
        ex = SharedMemoryExecutor(2, min_parallel_upd=1,
                                  start_method="spawn")
        try:
            parallel = FSimEngine(g, g, cfg).run(executor=ex)
            assert_identical(serial, parallel)
        finally:
            ex.close()

    def test_unpicklable_state_falls_back_to_serial(self,
                                                    medium_random_graph):
        """An engine the executor cannot ship degrades to the serial
        path (with a warning), never to a crash."""
        g = medium_random_graph
        cfg = FSimConfig(
            variant=Variant.S,
            label_function=lambda a, b: 1.0 if a == b else 0.0,
            backend="python",
        )
        serial = FSimEngine(g, g, cfg).run()
        ex = SharedMemoryExecutor(2, min_parallel_upd=1,
                                  min_parallel_pairs=1)
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                parallel = FSimEngine(g, g, cfg).run(executor=ex)
            assert_identical(serial, parallel)
            assert not ex.pool_started
        finally:
            ex.close()


# ----------------------------------------------------------------------
# configuration plumbing
# ----------------------------------------------------------------------
class TestConfigPlumbing:
    def test_workers_validated(self):
        with pytest.raises(ConfigError):
            FSimConfig(workers=0)
        with pytest.raises(ConfigError):
            FSimConfig(executor="bogus")

    def test_config_workers_drive_run(self, small_random_graph):
        g = small_random_graph
        cfg = FSimConfig(
            variant=Variant.S, label_function="indicator",
            workers=2, executor="serial",
        )
        result = FSimEngine(g, g, cfg).run()
        serial = FSimEngine(
            g, g, cfg.with_options(workers=1)
        ).run()
        assert_identical(serial, result)

    def test_run_rejects_bad_workers(self, small_random_graph):
        g = small_random_graph
        with pytest.raises(ConfigError):
            FSimEngine(g, g, FSimConfig()).run(workers=0)

    def test_legacy_shims_still_work(self, medium_random_graph):
        from repro.core import parallel as legacy

        g = medium_random_graph
        cfg = FSimConfig(variant=Variant.S, label_function="indicator")
        engine = FSimEngine(g, g, cfg)
        serial = engine.run()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            shimmed = legacy.run_parallel(FSimEngine(g, g, cfg), 2)
        assert_identical(serial, shimmed)


# ----------------------------------------------------------------------
# concurrent sessions on one cached executor
# ----------------------------------------------------------------------
class TestConcurrentSessions:
    def test_threads_sharing_one_executor_stay_bitwise_correct(self):
        """Two threads running sessions on the same cached executor must
        not clobber each other's sweep state (per-session buffers,
        token-keyed fork staging)."""
        import threading

        graphs = [
            random_graph(20 + 4 * i, 50 + 8 * i,
                         uniform_labels(20 + 4 * i, 3, seed=i), seed=i + 50)
            for i in range(2)
        ]
        cfg = FSimConfig(
            variant=Variant.S, label_function="indicator", backend="numpy",
        )
        serials = [FSimEngine(g, g, cfg).run() for g in graphs]
        ex = SharedMemoryExecutor(2, min_parallel_upd=1,
                                  min_parallel_pairs=1)
        # Warm the pool from the main thread first (the documented
        # pattern for multi-threaded services: lazily forking a pool
        # while other threads run risks inheriting held locks).
        first = FSimEngine(graphs[0], graphs[0], cfg).run(executor=ex)
        assert first.scores == serials[0].scores
        failures = []

        def worker(index):
            try:
                for _ in range(3):
                    result = FSimEngine(
                        graphs[index], graphs[index], cfg
                    ).run(executor=ex)
                    if result.scores != serials[index].scores:
                        failures.append(index)
            except Exception as error:  # pragma: no cover - surfaced below
                failures.append(error)

        try:
            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            ex.close()
        assert not failures


# ----------------------------------------------------------------------
# persistent sweep channels: O(delta) broadcast for streaming sessions
# ----------------------------------------------------------------------
class TestSweepChannel:
    @staticmethod
    def _streaming_graph(seed=7):
        labels = uniform_labels(80, 3, seed=seed)
        return random_graph(80, 240, labels, seed=seed + 1)

    @staticmethod
    def _config():
        return FSimConfig(
            variant=Variant.B, label_function="indicator", backend="numpy",
        )

    def test_broadcast_bytes_scale_with_delta(self):
        """After the one-time base broadcast, a parallel streaming
        update ships only the recorded delta ops -- not the compiled
        state -- so broadcast bytes scale with the edit, not the graph
        (the ROADMAP O(delta) item)."""
        from repro.streaming import IncrementalFSim

        graph = self._streaming_graph()
        replica = self._streaming_graph()
        cfg = self._config()
        ex = SharedMemoryExecutor(2, min_parallel_upd=1)
        try:
            session = IncrementalFSim(graph, graph, cfg, executor=ex)
            mirror = IncrementalFSim(replica, replica, cfg)
            assert_identical(mirror.compute(), session.compute())
            channel = session._channel
            assert channel is not None
            assert channel.base_broadcasts == 1
            base_bytes = channel.last_broadcast_bytes
            edges = list(graph.edges())
            single_delta_bytes = None
            for index in range(3):
                u, v = edges[index * 11]
                session.log1.remove_edge(u, v)
                mirror.log1.remove_edge(u, v)
                assert_identical(mirror.compute(), session.compute())
                if single_delta_bytes is None:
                    single_delta_bytes = channel.last_broadcast_bytes
            assert channel.base_broadcasts == 1  # never re-broadcast
            assert channel.delta_broadcasts >= 1
            # O(delta): a one-edge update costs a few hundred bytes at
            # most; the compiled state is many orders larger.
            assert single_delta_bytes < base_bytes / 50
            assert channel.last_broadcast_bytes < base_bytes / 50
            # The cumulative journal grows linearly in ops, not graph.
            assert channel.last_broadcast_bytes <= 3 * single_delta_bytes + 256
            session.close()
            assert channel.closed
        finally:
            ex.close()

    def test_journal_budget_rebroadcasts_base(self, monkeypatch):
        from repro.streaming import IncrementalFSim

        monkeypatch.setattr(executor_module, "CHANNEL_JOURNAL_BUDGET", 2)
        graph = self._streaming_graph(seed=19)
        replica = self._streaming_graph(seed=19)
        cfg = self._config()
        ex = SharedMemoryExecutor(2, min_parallel_upd=1)
        try:
            session = IncrementalFSim(graph, graph, cfg, executor=ex)
            mirror = IncrementalFSim(replica, replica, cfg)
            assert_identical(mirror.compute(), session.compute())
            edges = list(graph.edges())
            for index in range(5):
                u, v = edges[index * 7]
                session.log1.remove_edge(u, v)
                mirror.log1.remove_edge(u, v)
                assert_identical(mirror.compute(), session.compute())
            channel = session._channel
            # Budget 2 forces at least one base re-broadcast across 5
            # patched updates -- and parity held throughout.
            assert channel.base_broadcasts >= 2
            session.close()
        finally:
            ex.close()

    def test_recompile_invalidates_channel(self):
        """Node churn forces a full recompile; the channel must drop its
        stale base instead of shipping deltas against it."""
        from repro.streaming import IncrementalFSim

        graph = self._streaming_graph(seed=31)
        replica = self._streaming_graph(seed=31)
        cfg = self._config()
        ex = SharedMemoryExecutor(2, min_parallel_upd=1)
        try:
            session = IncrementalFSim(graph, graph, cfg, executor=ex)
            mirror = IncrementalFSim(replica, replica, cfg)
            assert_identical(mirror.compute(), session.compute())
            channel = session._channel
            first_bases = channel.base_broadcasts
            nodes = graph.nodes()
            for live, ghost in ((session, mirror),):
                live.log1.add_node("fresh-node", "L0")
                live.log1.add_edge("fresh-node", nodes[0])
                ghost.log1.add_node("fresh-node", "L0")
                ghost.log1.add_edge("fresh-node", nodes[0])
            assert_identical(mirror.compute(), session.compute())
            assert session.stats["full_recompiles"] == 1
            assert channel.base_broadcasts == first_bases + 1
            session.close()
        finally:
            ex.close()


# ----------------------------------------------------------------------
# bounded executor registry: shutdown_all / idle eviction
# ----------------------------------------------------------------------
class TestRegistryBounds:
    def test_idle_pools_are_reclaimed(self, medium_random_graph):
        from repro.runtime import evict_idle_executors

        shutdown_executors()
        g = medium_random_graph
        cfg = FSimConfig(
            variant=Variant.S, label_function="indicator", backend="numpy",
        )
        ex = get_executor("shared_memory", 2)
        ex.min_parallel_upd = 1  # force the pool to actually spawn
        serial = FSimEngine(g, g, cfg).run()
        parallel = FSimEngine(g, g, cfg).run(executor=ex)
        assert_identical(serial, parallel)
        assert ex.pool_started
        assert ex.last_used > 0.0
        assert ex.active_sessions == 0
        closed = evict_idle_executors(0.0)
        assert closed == 1
        assert not ex.pool_started  # pool terminated
        assert get_executor("shared_memory", 2) is not ex  # evicted
        shutdown_executors()

    def test_idle_grace_period_is_respected(self):
        from repro.runtime import evict_idle_executors

        shutdown_executors()
        ex = get_executor("shared_memory", 2)
        # A just-created, never-used executor is inside the grace
        # period too (last_used is stamped at construction).
        assert evict_idle_executors(3600.0) == 0
        assert get_executor("shared_memory", 2) is ex
        shutdown_executors()

    def test_live_channels_block_eviction(self):
        """A resident streaming session's channel pins its executor:
        evicting it would demote the session from O(delta) broadcasts
        and orphan the respawned pool outside the registry."""
        from repro.runtime import evict_idle_executors

        shutdown_executors()
        ex = get_executor("shared_memory", 2)
        channel = ex.open_channel()
        assert evict_idle_executors(0.0) == 0
        assert get_executor("shared_memory", 2) is ex
        channel.close()
        assert evict_idle_executors(0.0) == 1
        shutdown_executors()

    def test_registry_bound_evicts_lru_idle(self, monkeypatch):
        shutdown_executors()
        monkeypatch.setattr(executor_module, "MAX_CACHED_EXECUTORS", 2)
        first = get_executor("shared_memory", 2)
        second = get_executor("shared_memory", 3)
        third = get_executor("shared_memory", 4)  # evicts `first` (LRU)
        registry = executor_module._CACHE
        assert len(registry) <= 2
        assert ("shared_memory", 2) not in registry
        assert get_executor("shared_memory", 3) is second
        assert get_executor("shared_memory", 4) is third
        shutdown_executors()

    def test_busy_executors_survive_the_bound(self, monkeypatch):
        shutdown_executors()
        monkeypatch.setattr(executor_module, "MAX_CACHED_EXECUTORS", 1)
        first = get_executor("shared_memory", 2)
        first.active_sessions += 1  # simulate an open session
        try:
            second = get_executor("shared_memory", 3)
            assert get_executor("shared_memory", 2) is first  # not evicted
            assert second is not first
        finally:
            first.active_sessions -= 1
        shutdown_executors()

    def test_shutdown_all_clears_registry(self):
        from repro.runtime import shutdown_all

        ex = get_executor("shared_memory", 2)
        shutdown_all()
        assert executor_module._CACHE == {}
        assert get_executor("shared_memory", 2) is not ex
        shutdown_executors()
