"""Tests for repro.service: store, scheduler, server, snapshots.

The service's load-bearing contract mirrors the runtime's: every
response is **bitwise identical** to the corresponding direct library
call on the same graph state -- micro-batching, result caches, resident
sessions and snapshot restores change latency, never values.  Parity
baselines rebuild graphs through the same construction sequence (never
``graph.copy()``, which reorders adjacency and legitimately perturbs
the last ulp).
"""

import random
import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import FSimConfig, fsim_matrix
from repro.core.plan import clear_plan_caches, plan_cache_stats
from repro.core.topk import TopKSearch
from repro.exceptions import (
    ServiceError,
    ServiceOverloadedError,
    SnapshotError,
)
from repro.graph.digraph import LabeledDigraph
from repro.graph.generators import random_graph, uniform_labels
from repro.service import GraphStore, ServerThread, ServiceClient
from repro.service.client import wire_partners, wire_scores
from repro.service.snapshot import (
    graph_fingerprint,
    restore_snapshot,
    save_snapshot,
)
from repro.service.store import LruCache, config_key
from repro.simulation import Variant
from repro.streaming.delta import DeltaOp


def make_graph(num_nodes=18, num_edges=45, labels=3, seed=5):
    """Deterministic graph; calling twice yields bitwise-equal twins."""
    return random_graph(
        num_nodes, num_edges,
        uniform_labels(num_nodes, labels, seed=seed), seed=seed + 1,
    )


def numpy_config(**overrides):
    options = dict(variant=Variant.B, label_function="indicator",
                   backend="numpy")
    options.update(overrides)
    return FSimConfig(**options)


# ----------------------------------------------------------------------
# store primitives
# ----------------------------------------------------------------------
class TestLruCache:
    def test_hit_miss_eviction_counters(self):
        cache = LruCache(2)
        assert cache.get("a") is None
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1
        cache.put("c", 3)  # evicts b (a was just touched)
        assert cache.get("b") is None
        stats = cache.stats()
        assert stats == {"size": 2, "capacity": 2, "hits": 1,
                         "misses": 2, "evictions": 1}


class TestGraphStore:
    def test_register_and_duplicate(self):
        store = GraphStore()
        store.register("g", make_graph())
        with pytest.raises(ServiceError):
            store.register("g", make_graph())
        store.register("g", make_graph(), replace=True)
        with pytest.raises(ServiceError):
            store.graph("missing")
        store.close()

    def test_unknown_config_param_rejected(self):
        store = GraphStore()
        store.register("g", make_graph())
        with pytest.raises(ServiceError):
            store.resolve_config("g", {"not_a_knob": 1})
        store.close()

    def test_fsim_result_cache_hits_until_mutation(self):
        store = GraphStore(default_config=numpy_config())
        store.register("g", make_graph())
        first = store.fsim("g", "g")
        assert store.fsim("g", "g") is first  # version-keyed cache hit
        pair = store.pair("g", "g", store.default_config)
        assert pair.results.hits == 1
        node_pair = next(iter(make_graph().edges()))
        store.mutate("g", [DeltaOp("remove_edge", *node_pair)])
        second = store.fsim("g", "g")
        assert second is not first
        replica = make_graph()
        replica.remove_edge(*node_pair)
        direct = fsim_matrix(replica, replica, config=store.default_config)
        assert second.scores == direct.scores
        assert second.deltas == direct.deltas
        store.close()

    def test_mutation_error_reports_partial_application(self):
        store = GraphStore(default_config=numpy_config())
        graph = make_graph()
        edge = next(iter(graph.edges()))
        store.register("g", graph)
        with pytest.raises(ServiceError, match="after 1 applied"):
            store.mutate("g", [
                DeltaOp("remove_edge", *edge),
                DeltaOp("remove_edge", "no-such", "edge"),
            ])
        assert not graph.has_edge(*edge)  # first op stayed applied
        result = store.fsim("g", "g")
        replica = make_graph()
        replica.remove_edge(*edge)
        assert result.scores == fsim_matrix(
            replica, replica, config=store.default_config
        ).scores
        store.close()

    def test_journal_trim_forces_cold_resync_not_wrong_answers(self,
                                                               monkeypatch):
        import repro.service.store as store_module

        monkeypatch.setattr(store_module, "JOURNAL_CAP", 2)
        store = GraphStore(default_config=numpy_config())
        graph = make_graph(num_nodes=22, num_edges=60)
        store.register("g", graph)
        store.fsim("g", "g")  # session established
        edges = list(graph.edges())
        # 4 mutations with cap 2: the session's sync window is lost.
        store.mutate("g", [DeltaOp("remove_edge", *edges[i])
                           for i in range(4)])
        result = store.fsim("g", "g")
        pair = store.pair("g", "g", store.default_config)
        assert pair.session.stats["out_of_band_resyncs"] == 1
        replica = make_graph(num_nodes=22, num_edges=60)
        for i in range(4):
            replica.remove_edge(*edges[i])
        assert result.scores == fsim_matrix(
            replica, replica, config=store.default_config
        ).scores
        store.close()

    def test_pair_lru_eviction_closes_sessions(self):
        store = GraphStore(default_config=numpy_config(), max_pairs=1)
        store.register("a", make_graph(seed=5))
        store.register("b", make_graph(seed=9))
        store.fsim("a", "a")
        pair_a = store.pair("a", "a", store.default_config)
        session_a = pair_a.session
        store.fsim("b", "b")  # evicts the (a, a) pair state
        assert store._pair_evictions == 1
        if session_a is not None and session_a._channel is not None:
            assert session_a._channel.closed
        store.close()

    def test_matrix_batches_and_caches(self):
        store = GraphStore(default_config=numpy_config())
        for index, seed in enumerate((5, 9, 13)):
            store.register(f"g{index}", make_graph(seed=seed))
        results = store.matrix(["g0", "g1"], "g2")
        again = store.matrix(["g0", "g1", "g0"], "g2")
        assert again[0] is results[0] and again[1] is results[1]
        assert again[2] is results[0]
        direct = fsim_matrix(
            make_graph(seed=5), make_graph(seed=13),
            config=store.default_config,
        )
        assert results[0].scores == direct.scores
        store.close()

    def test_matrix_config_comes_from_the_data_graph(self):
        """Coalesced matrix batches may mix query graphs registered
        under different defaults; the shared data graph's config (plus
        request params) must govern every entry -- never the first
        query graph's."""
        store = GraphStore(default_config=numpy_config())
        store.register("q", make_graph(seed=5),
                       config=numpy_config(theta=0.9))
        store.register("data", make_graph(seed=13))
        (result,) = store.matrix(["q"], "data")
        direct = fsim_matrix(make_graph(seed=5), make_graph(seed=13),
                             config=numpy_config())  # data's config
        assert result.scores == direct.scores
        store.close()

    def test_stats_expose_plan_cache_and_executors(self):
        store = GraphStore(default_config=numpy_config())
        store.register("g", make_graph())
        store.fsim("g", "g")
        stats = store.stats()
        for key in ("plan_hits", "plan_misses", "plan_evictions",
                    "table_evictions", "plan_adoptions"):
            assert key in stats["plan_cache"]
        assert "cached" in stats["executors"]
        assert stats["graphs"]["g"]["mutations"] == 0
        assert stats["pairs"]["g|g"]["session"] is True
        store.close()


# ----------------------------------------------------------------------
# server + scheduler behavior
# ----------------------------------------------------------------------
class TestServer:
    def test_basic_ops_and_errors(self):
        store = GraphStore(default_config=numpy_config())
        store.register("g", make_graph())
        with ServerThread(store) as server:
            with ServiceClient(port=server.port) as client:
                assert client.ping() == {"pong": True}
                assert client.graphs() == ["g"]
                with pytest.raises(ServiceError, match="unknown graph"):
                    client.fsim("nope")
                with pytest.raises(ServiceError, match="unknown op"):
                    client.request("frobnicate")
                with pytest.raises(ServiceError, match="missing"):
                    client.request("fsim")
                stats = client.stats()
                assert stats["server"]["requests_served"] >= 1

    def test_register_inline_and_query(self):
        with ServerThread(GraphStore()) as server:
            with ServiceClient(port=server.port) as client:
                client.register(
                    "tiny",
                    nodes=[["a", "L"], ["b", "L"], ["c", "M"]],
                    edges=[["a", "b"], ["b", "c"]],
                    params={"label_function": "indicator",
                            "backend": "numpy"},
                )
                result = client.fsim("tiny")
                graph = LabeledDigraph("tiny")
                for node, label in (("a", "L"), ("b", "L"), ("c", "M")):
                    graph.add_node(node, label)
                graph.add_edge("a", "b")
                graph.add_edge("b", "c")
                direct = fsim_matrix(
                    graph, graph,
                    config=FSimConfig(label_function="indicator",
                                      backend="numpy"),
                )
                assert wire_scores(result) == direct.scores

    def test_topk_requests_coalesce_into_one_batch(self):
        store = GraphStore(default_config=numpy_config())
        graph = make_graph(num_nodes=24, num_edges=70)
        store.register("g", graph)
        queries = list(graph.nodes())[:6]
        responses = {}
        with ServerThread(store, window=0.15) as server:

            def ask(query):
                with ServiceClient(port=server.port) as client:
                    responses[query] = client.topk("g", query, k=3)

            threads = [threading.Thread(target=ask, args=(q,))
                       for q in queries]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            with ServiceClient(port=server.port) as client:
                stats = client.stats()["scheduler"]
        assert stats["coalesced_batches"] >= 1
        assert stats["largest_batch"] >= 2
        replica = make_graph(num_nodes=24, num_edges=70)
        search = TopKSearch(replica, replica, store.default_config)
        for query in queries:
            assert wire_partners(responses[query]) == \
                search.search(query, 3).partners

    def test_bad_query_fails_alone_not_its_batch(self):
        store = GraphStore(default_config=numpy_config())
        graph = make_graph()
        store.register("g", graph)
        good = graph.nodes()[0]
        outcomes = {}
        with ServerThread(store, window=0.15) as server:

            def ask(tag, query):
                try:
                    with ServiceClient(port=server.port) as client:
                        outcomes[tag] = client.topk("g", query, k=2)
                except ServiceError as exc:
                    outcomes[tag] = exc

            threads = [
                threading.Thread(target=ask, args=("good", good)),
                threading.Thread(target=ask, args=("bad", "ghost-node")),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert isinstance(outcomes["bad"], ServiceError)
        replica = make_graph()
        expected = TopKSearch(replica, replica,
                              store.default_config).search(good, 2)
        assert wire_partners(outcomes["good"]) == expected.partners

    def test_shutdown_completes_with_idle_connections_open(self):
        """An idle keep-alive client must not deadlock stop() (Python
        3.12.1+ Server.wait_closed blocks until handlers finish)."""
        store = GraphStore(default_config=numpy_config())
        store.register("g", make_graph())
        server = ServerThread(store).start()
        idle = ServiceClient(port=server.port)
        idle.ping()  # connection established and then left open
        try:
            server.stop(timeout=10.0)  # raises on timeout = deadlock
        finally:
            idle.close()

    def test_admission_control_rejects_past_max_pending(self):
        store = GraphStore(default_config=numpy_config())
        store.register("g", make_graph(num_nodes=30, num_edges=90))
        rejected = []
        completed = []
        with ServerThread(store, window=0.3, max_pending=1) as server:

            def ask(index):
                try:
                    with ServiceClient(port=server.port) as client:
                        completed.append(client.topk(
                            "g", make_graph(num_nodes=30, num_edges=90)
                            .nodes()[index], k=2,
                        ))
                except ServiceOverloadedError as exc:
                    rejected.append(exc)

            threads = [threading.Thread(target=ask, args=(i,))
                       for i in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        # With max_pending=1 and a 300ms window, at least one of the
        # four concurrent requests must have been turned away -- and
        # the rejection is the typed overload error, not a failure.
        assert rejected
        assert completed  # the admitted ones still answered


# ----------------------------------------------------------------------
# warm snapshots
# ----------------------------------------------------------------------
class TestSnapshots:
    def test_roundtrip_answers_first_query_without_recompiling(self,
                                                               tmp_path):
        path = tmp_path / "g.snap"
        store = GraphStore(default_config=numpy_config())
        store.register("g", make_graph())
        warm = store.fsim("g", "g")
        meta = save_snapshot(store, "g", path)
        assert meta["session"] is True
        store.close()

        clear_plan_caches()
        fresh = GraphStore(default_config=numpy_config())
        restore_snapshot(fresh, path, graph=make_graph())
        first = fresh.fsim("g", "g")
        stats = plan_cache_stats()
        # The acceptance bar: a snapshot-restored server answers its
        # first query with NO plan misses (nothing was re-lowered, the
        # adopted plan + restored result served it).
        assert stats["plan_misses"] == 0
        assert stats["plan_adoptions"] == 1
        pair = fresh.pair("g", "g", fresh.default_config)
        assert pair.session.stats["cold_runs"] == 0
        assert first.scores == warm.scores
        assert first.deltas == warm.deltas
        fresh.close()

    def test_restore_continues_incrementally_with_parity(self, tmp_path):
        path = tmp_path / "g.snap"
        store = GraphStore(default_config=numpy_config())
        store.register("g", make_graph())
        store.fsim("g", "g")
        save_snapshot(store, "g", path)
        store.close()

        fresh = GraphStore(default_config=numpy_config())
        live = make_graph()
        restore_snapshot(fresh, path, graph=live)
        edge = next(iter(live.edges()))
        fresh.mutate("g", [DeltaOp("remove_edge", *edge)])
        result = fresh.fsim("g", "g")
        pair = fresh.pair("g", "g", fresh.default_config)
        assert pair.session.stats["cold_runs"] == 0
        assert pair.session.stats["incremental_runs"] == 1
        replica = make_graph()
        replica.remove_edge(*edge)
        direct = fsim_matrix(replica, replica, config=fresh.default_config)
        assert result.scores == direct.scores
        assert result.deltas == direct.deltas
        fresh.close()

    def test_stale_snapshot_is_rejected(self, tmp_path):
        path = tmp_path / "g.snap"
        store = GraphStore(default_config=numpy_config())
        store.register("g", make_graph())
        store.fsim("g", "g")
        save_snapshot(store, "g", path)
        store.close()

        drifted = make_graph()
        drifted.remove_edge(*next(iter(drifted.edges())))
        fresh = GraphStore(default_config=numpy_config())
        with pytest.raises(SnapshotError, match="stale"):
            restore_snapshot(fresh, path, graph=drifted)
        assert fresh.graph_names() == []  # nothing half-registered
        fresh.close()

    def test_restore_under_different_config_is_stale(self, tmp_path):
        """A server restarted with different flags must not silently
        serve the old config's scores from a snapshot."""
        path = tmp_path / "g.snap"
        store = GraphStore(default_config=numpy_config(theta=0.0))
        store.register("g", make_graph())
        store.fsim("g", "g")
        save_snapshot(store, "g", path)
        store.close()

        fresh = GraphStore(default_config=numpy_config(theta=0.8))
        with pytest.raises(SnapshotError, match="different config"):
            restore_snapshot(fresh, path, graph=make_graph(),
                             config=fresh.default_config)
        # Same flags (even with orthogonal workers/executor settings,
        # which never change values) restore fine.
        fresh2 = GraphStore(default_config=numpy_config(theta=0.0),
                            workers=2)
        restore_snapshot(fresh2, path, graph=make_graph(),
                         config=fresh2.default_config)
        fresh2.close()

    def test_corrupt_snapshot_is_rejected(self, tmp_path):
        path = tmp_path / "junk.snap"
        path.write_bytes(b"this is not a pickle")
        with pytest.raises(SnapshotError, match="unreadable"):
            restore_snapshot(GraphStore(), path)
        with pytest.raises(SnapshotError, match="no snapshot"):
            restore_snapshot(GraphStore(), tmp_path / "absent.snap")

    def test_fingerprint_tracks_structure_and_config(self):
        config = numpy_config()
        base = graph_fingerprint(make_graph(), config)
        assert graph_fingerprint(make_graph(), config) == base
        mutated = make_graph()
        mutated.remove_edge(*next(iter(mutated.edges())))
        assert graph_fingerprint(mutated, config) != base
        other_config = numpy_config(theta=0.5)
        assert config_key(other_config) != config_key(config)
        assert graph_fingerprint(make_graph(), other_config) != base

    def test_snapshot_ops_over_the_wire(self, tmp_path):
        path = str(tmp_path / "wire.snap")
        store = GraphStore(default_config=numpy_config())
        store.register("g", make_graph())
        with ServerThread(store) as server:
            with ServiceClient(port=server.port) as client:
                warm = client.fsim("g")
                meta = client.snapshot_save("g", path)
                assert meta["bytes"] > 0
        fresh_store = GraphStore(default_config=numpy_config())
        with ServerThread(fresh_store) as server:
            with ServiceClient(port=server.port) as client:
                client.snapshot_restore(path)
                assert client.graphs() == ["g"]
                restored = client.fsim("g")
                assert restored["scores"] == warm["scores"]
                stats = client.stats()
                assert stats["restored_snapshots"] == 1


# ----------------------------------------------------------------------
# concurrent sessions: the interleaving property test (both backends)
# ----------------------------------------------------------------------
class TestConcurrentInterleavings:
    @settings(
        max_examples=4, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        backend=st.sampled_from(["python", "numpy"]),
    )
    def test_interleaved_queries_and_mutations_match_serial_library(
        self, seed, backend,
    ):
        """Two graphs, one server, concurrent mixed traffic in rounds:
        every response must be bitwise identical to a serial library
        call on an identically built replica at the same version."""
        rng = random.Random(seed)
        specs = {
            "ga": dict(num_nodes=14, num_edges=34, labels=3, seed=seed % 97),
            "gb": dict(num_nodes=12, num_edges=30, labels=2,
                       seed=seed % 89 + 1),
        }
        config = FSimConfig(variant=Variant.B, label_function="indicator",
                            backend=backend)
        store = GraphStore(default_config=config)
        graphs = {name: make_graph(**spec) for name, spec in specs.items()}
        replicas = {name: make_graph(**spec) for name, spec in specs.items()}
        for name, graph in graphs.items():
            store.register(name, graph)
        with ServerThread(store, window=0.02) as server:
            for _round in range(3):
                jobs = []
                for name in specs:
                    jobs.append(("fsim", name, None))
                    query = rng.choice(replicas[name].nodes())
                    jobs.append(("topk", name, query))
                responses = {}

                def run_job(tag, job):
                    kind, name, query = job
                    with ServiceClient(port=server.port) as client:
                        if kind == "fsim":
                            responses[tag] = client.fsim(name)
                        else:
                            responses[tag] = client.topk(name, query, k=3)

                threads = [
                    threading.Thread(target=run_job, args=(tag, job))
                    for tag, job in enumerate(jobs)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                # Queries mutate nothing: serial library calls on the
                # replicas at the same version must agree bitwise.
                for tag, (kind, name, query) in enumerate(jobs):
                    replica = replicas[name]
                    if kind == "fsim":
                        direct = fsim_matrix(replica, replica, config=config)
                        assert wire_scores(responses[tag]) == direct.scores
                        assert responses[tag]["iterations"] == \
                            direct.iterations
                    else:
                        direct = TopKSearch(replica, replica,
                                            config).search(query, 3)
                        assert wire_partners(responses[tag]) == \
                            direct.partners
                        assert responses[tag]["certified"] == \
                            direct.certified
                # Between rounds: mutate each graph through the service
                # and mirror the edit on the replica.
                with ServiceClient(port=server.port) as client:
                    for name in specs:
                        edges = list(replicas[name].edges())
                        if not edges:
                            continue
                        edge = rng.choice(edges)
                        client.mutate(name, [("remove_edge", *edge)])
                        replicas[name].remove_edge(*edge)


# ----------------------------------------------------------------------
# CLI integration (`serve` wiring is exercised via query/mutate)
# ----------------------------------------------------------------------
class TestCli:
    def test_query_and_mutate_subcommands(self, tmp_path, capsys):
        from repro.cli import main
        from repro.graph.io import load_graph, save_graph

        # The CLI speaks strings (like file-loaded graphs): write the
        # test graph through the v/e format first.
        graph_path = tmp_path / "g.txt"
        save_graph(make_graph(), graph_path)
        graph = load_graph(graph_path, name="g")
        store = GraphStore(default_config=numpy_config())
        store.register("g", graph)
        script = tmp_path / "edits.txt"
        edge = next(iter(graph.edges()))
        script.write_text(f"remove_edge {edge[0]} {edge[1]}\n")
        with ServerThread(store) as server:
            port = str(server.port)
            assert main(["query", "--port", port, "--op", "ping"]) == 0
            assert main(["query", "--port", port, "--op", "graphs"]) == 0
            assert main(["query", "--port", port, "--op", "fsim",
                         "--graph1", "g", "--top", "3"]) == 0
            assert main(["query", "--port", port, "--op", "topk",
                         "--graph1", "g", "--query", graph.nodes()[0],
                         "-k", "2"]) == 0
            assert main(["mutate", "--port", port, "--graph", "g",
                         "--script", str(script)]) == 0
            assert main(["query", "--port", port, "--op", "stats"]) == 0
        output = capsys.readouterr().out
        assert "pong" in output
        assert "applied 1 op(s)" in output

    def test_mutate_rejects_g2_targeted_scripts(self, tmp_path):
        from repro.cli import main

        script = tmp_path / "two-graph.txt"
        script.write_text("add_edge a b\ng2 remove_edge x y\n")
        with pytest.raises(SystemExit, match="addresses g2"):
            main(["mutate", "--port", "1", "--graph", "g",
                  "--script", str(script)])

    def test_serve_parser_accepts_service_flags(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args([
            "serve", "--graph", "g=/tmp/g.txt", "--port", "0",
            "--window", "0.01", "--snapshot-dir", "/tmp/snaps",
        ])
        assert args.handler.__name__ == "_cmd_serve"
        assert args.graph == ["g=/tmp/g.txt"]
