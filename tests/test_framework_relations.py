"""Tests for Section 4.3: SimRank, RoleSim, k-bisimulation, WL test."""

import pytest

from repro.core import (
    fsim_matrix,
    rolesim_reference,
    rolesim_via_framework,
    simrank_reference,
    simrank_via_framework,
    wl_colors,
    wl_equivalent_pairs,
    wl_test_pair,
)
from repro.core.engine import is_one
from repro.core.wl import wl_graph_test
from repro.graph import from_edges
from repro.graph.generators import (
    cycle_graph,
    path_graph,
    random_graph,
    uniform_labels,
)
from repro.simulation import Variant, kbisimulation_signatures, maximal_simulation


class TestSimRank:
    def test_framework_matches_reference(self):
        g = random_graph(10, 22, uniform_labels(10, 1, 3), seed=4)
        reference = simrank_reference(g, max_iterations=15)
        framework = simrank_via_framework(g, max_iterations=15)
        for u in g.nodes():
            for v in g.nodes():
                assert framework.score(u, v) == pytest.approx(
                    reference[(u, v)], abs=1e-9
                ), (u, v)

    def test_diagonal_pinned(self):
        g = cycle_graph(4)
        framework = simrank_via_framework(g)
        for node in g.nodes():
            assert framework.score(node, node) == 1.0

    def test_no_inneighbors_scores_zero(self):
        g = from_edges([("a", "b")], {"a": "L", "b": "L"})
        framework = simrank_via_framework(g)
        assert framework.score("a", "b") == 0.0  # a has no in-neighbors

    def test_symmetry(self):
        g = random_graph(8, 18, uniform_labels(8, 1, 5), seed=6)
        framework = simrank_via_framework(g, max_iterations=10)
        for u in g.nodes():
            for v in g.nodes():
                assert framework.score(u, v) == pytest.approx(
                    framework.score(v, u), abs=1e-9
                )


class TestRoleSim:
    @pytest.mark.parametrize("normalizer", ["max", "geometric"])
    def test_framework_matches_reference(self, normalizer):
        g = random_graph(9, 18, uniform_labels(9, 1, 7), seed=8)
        reference = rolesim_reference(g, max_iterations=10, normalizer=normalizer)
        framework = rolesim_via_framework(g, max_iterations=10, normalizer=normalizer)
        for u in g.nodes():
            for v in g.nodes():
                assert framework.score(u, v) == pytest.approx(
                    reference[(u, v)], abs=1e-9
                ), (u, v, normalizer)

    def test_automorphic_nodes_score_one(self):
        # all cycle nodes are automorphically equivalent
        g = cycle_graph(5)
        framework = rolesim_via_framework(g)
        for u in g.nodes():
            for v in g.nodes():
                assert framework.score(u, v) == pytest.approx(1.0)

    def test_floor_is_beta(self):
        g = from_edges([("a", "b")], {"a": "L", "b": "L", "c": "L"})
        framework = rolesim_via_framework(g, beta=0.15)
        # c is isolated, a/b are not: matching term 0, floor beta remains
        assert framework.score("a", "c") == pytest.approx(0.15)


class TestKBisimulationTheorem4:
    """Theorem 4: u,v k-bisimilar iff FSimb^k(u, v) = 1 (w- = 0)."""

    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_equivalence_on_random_graph(self, k):
        g = random_graph(12, 26, uniform_labels(12, 2, 11), seed=12)
        signatures = kbisimulation_signatures(g, k)[k]
        result = fsim_matrix(
            g, g, Variant.B,
            w_out=0.8, w_in=0.0,
            label_function="indicator",
            epsilon=1e-12,
            max_iterations=max(k, 1),
        )
        if k == 0:
            # FSim^0 is the label indicator; compare directly.
            for u in g.nodes():
                for v in g.nodes():
                    assert (signatures[u] == signatures[v]) == (
                        g.label(u) == g.label(v)
                    )
            return
        for u in g.nodes():
            for v in g.nodes():
                bisimilar = signatures[u] == signatures[v]
                assert is_one(result.score(u, v)) == bisimilar, (k, u, v)


class TestWLTheorem5:
    """Theorem 5: WL stable colors agree iff exact bj-simulation holds."""

    def test_equivalence_on_random_graphs(self):
        for seed in range(4):
            g = random_graph(10, 20, uniform_labels(10, 2, seed), seed=seed + 20)
            undirected = g.to_undirected()
            wl_pairs = wl_equivalent_pairs(g, g)
            bj_pairs = set(
                maximal_simulation(undirected, undirected, Variant.BJ).pairs()
            )
            assert wl_pairs == bj_pairs, seed

    def test_pair_api(self):
        g = cycle_graph(4)
        assert wl_test_pair(g, 0, g, 2)

    def test_wl_distinguishes_degrees(self):
        g = from_edges(
            [("hub", "x"), ("hub", "y"), ("one", "z")],
            {"hub": "P", "one": "P", "x": "C", "y": "C", "z": "C"},
        )
        assert not wl_test_pair(g, "hub", g, "one")

    def test_wl_graph_test_isomorphic_cycles(self):
        assert wl_graph_test(cycle_graph(5), cycle_graph(5))
        assert not wl_graph_test(cycle_graph(5), cycle_graph(6))
        assert not wl_graph_test(cycle_graph(5), path_graph(5))

    def test_truncated_iterations(self):
        g = path_graph(6)
        colors1, colors2 = wl_colors(g, g, max_iterations=0)
        # zero rounds: colors are just labels, all equal here
        assert len(set(colors1.values())) == 1
        colors1, _ = wl_colors(g, g, max_iterations=2)
        assert len(set(colors1.values())) > 1
