"""Top-k backend parity and batched-query semantics.

The acceptance bar for the batched vectorized top-k path: certified
:class:`TopKResult` objects (partner sets, scores, certification flag,
iteration counts) identical between the python and numpy paths across
variants, pruning modes and pinned pairs -- and a batched
``search_many`` identical to per-query ``search`` on both backends.
"""

import pytest

from repro.core import FSimConfig, TopKSearch, fsim_matrix
from repro.exceptions import ConfigError
from repro.graph.generators import random_graph, uniform_labels
from repro.simulation import Variant

ALL_VARIANTS = [Variant.S, Variant.DP, Variant.B, Variant.BJ]

TOLERANCE = 1e-9


@pytest.fixture(scope="module")
def graph_pair():
    g1 = random_graph(16, 36, uniform_labels(16, 3, seed=31), seed=32)
    g2 = random_graph(20, 48, uniform_labels(20, 3, seed=33), seed=34)
    return g1, g2


def assert_topk_parity(graph1, graph2, config, queries, k):
    python = TopKSearch(
        graph1, graph2, config.with_options(backend="python")
    ).search_many(queries, k)
    numpy = TopKSearch(
        graph1, graph2, config.with_options(backend="numpy")
    ).search_many(queries, k)
    assert len(python) == len(numpy) == len(queries)
    for expected, got in zip(python, numpy):
        assert got.query == expected.query
        assert got.certified == expected.certified
        assert got.iterations == expected.iterations
        assert [node for node, _ in got.partners] == [
            node for node, _ in expected.partners
        ], expected.query
        for (_, score1), (_, score2) in zip(expected.partners, got.partners):
            assert abs(score1 - score2) <= TOLERANCE
    return python, numpy


class TestTopKBackendParity:
    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_variants(self, variant, graph_pair):
        g1, g2 = graph_pair
        config = FSimConfig(variant=variant, label_function="indicator")
        assert_topk_parity(g1, g2, config, list(g1.nodes())[:4], 3)

    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_pruning_modes(self, variant, graph_pair):
        g1, _ = graph_pair
        config = FSimConfig(
            variant=variant, theta=1.0, use_upper_bound=True,
        )
        assert_topk_parity(g1, g1, config, list(g1.nodes())[:4], 2)

    def test_alpha_fallback_pruning(self, graph_pair):
        g1, g2 = graph_pair
        config = FSimConfig(
            variant=Variant.BJ, use_upper_bound=True, beta=0.8, alpha=0.4,
        )
        assert_topk_parity(g1, g2, config, list(g1.nodes())[:4], 3)

    def test_pinned_pairs(self, graph_pair):
        g1, _ = graph_pair
        nodes = g1.nodes()
        config = FSimConfig(
            variant=Variant.S, label_function="indicator",
            pinned_pairs={
                (nodes[0], nodes[0]): 1.0,
                (nodes[0], nodes[3]): 0.5,
                (nodes[1], "offgraph"): 0.25,
            },
        )
        python, _ = assert_topk_parity(
            g1, g1, config, [nodes[0], nodes[1]], 3
        )
        # Pinned values must surface in the rows at their pinned score.
        row0 = dict(python[0].partners)
        assert row0.get(nodes[0]) == 1.0

    def test_jaro_winkler_labels(self, graph_pair):
        g1, g2 = graph_pair
        config = FSimConfig(variant=Variant.B, theta=0.6)
        assert_topk_parity(g1, g2, config, list(g1.nodes())[:3], 4)


class TestBatchedSemantics:
    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_batch_equals_solo(self, backend, graph_pair):
        g1, g2 = graph_pair
        config = FSimConfig(
            variant=Variant.B, label_function="indicator", backend=backend,
        )
        search = TopKSearch(g1, g2, config)
        queries = list(g1.nodes())[:5]
        batched = search.search_many(queries, 3)
        for query, from_batch in zip(queries, batched):
            solo = search.search(query, 3)
            assert solo == from_batch

    def test_duplicate_queries(self, graph_pair):
        g1, _ = graph_pair
        config = FSimConfig(variant=Variant.B, label_function="indicator")
        search = TopKSearch(g1, g1, config)
        query = list(g1.nodes())[0]
        results = search.search_many([query, query], 2)
        assert results[0] == results[1]

    def test_empty_batch(self, graph_pair):
        g1, _ = graph_pair
        search = TopKSearch(g1, g1, FSimConfig())
        assert search.search_many([], 3) == []

    def test_unknown_query_rejected(self, graph_pair):
        g1, _ = graph_pair
        search = TopKSearch(g1, g1, FSimConfig())
        with pytest.raises(ConfigError):
            search.search_many([list(g1.nodes())[0], "ghost"], 2)

    def test_invalid_k_rejected(self, graph_pair):
        g1, _ = graph_pair
        search = TopKSearch(g1, g1, FSimConfig())
        with pytest.raises(ConfigError):
            search.search_many(list(g1.nodes())[:2], 0)

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_certified_set_matches_full_run(self, backend, graph_pair):
        """A certified top-k must equal the converged run's top-k."""
        g1, _ = graph_pair
        config = FSimConfig(
            variant=Variant.B, label_function="indicator", backend=backend,
        )
        full = fsim_matrix(g1, g1, config=config)
        results = TopKSearch(g1, g1, config).search_many(
            list(g1.nodes())[:5], 3
        )
        for result in results:
            if not result.certified:
                continue
            expected = full.top_k(result.query, 3)
            assert [node for node, _ in result.partners] == [
                node for node, _ in expected
            ]
            # Scores may still drift by the remaining contraction tail.
            for (_, early), (_, final) in zip(result.partners, expected):
                assert early == pytest.approx(final, abs=0.05)
