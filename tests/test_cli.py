"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.graph import figure1_graphs
from repro.graph.io import save_graph


class TestDatasets:
    def test_prints_all_rows(self, capsys):
        assert main(["datasets", "--scale", "0.4"]) == 0
        out = capsys.readouterr().out
        for name in ("yeast", "acmcit"):
            assert name in out


class TestFsim:
    def test_scores_between_files(self, tmp_path, capsys):
        pattern, data = figure1_graphs()
        path1 = tmp_path / "p.tsv"
        path2 = tmp_path / "d.tsv"
        save_graph(pattern, path1)
        save_graph(data, path2)
        code = main(
            [
                "fsim", str(path1), str(path2),
                "--variant", "bj", "--label-function", "indicator",
                "--top", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "FSimbj" in out
        assert "1.000000" in out

    def test_cross_variant_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["fsim", "a", "b", "--variant", "cross"])


class TestTopK:
    def test_batched_queries(self, tmp_path, capsys):
        pattern, data = figure1_graphs()
        path1 = tmp_path / "p.tsv"
        path2 = tmp_path / "d.tsv"
        save_graph(pattern, path1)
        save_graph(data, path2)
        code = main(
            [
                "topk", str(path1), str(path2),
                "--query", "u", "--query", "h1",
                "-k", "2", "--label-function", "indicator",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "top-2 for u:" in out
        assert "top-2 for h1:" in out

    def test_query_required(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["topk", "a", "b"])


class TestStream:
    def test_replays_edit_script(self, tmp_path, capsys):
        pattern, data = figure1_graphs()
        path1 = tmp_path / "p.tsv"
        path2 = tmp_path / "d.tsv"
        save_graph(pattern, path1)
        save_graph(data, path2)
        script = tmp_path / "edits.txt"
        nodes = [str(node) for node in pattern.nodes()]
        script.write_text(
            "# churn on the pattern side\n"
            f"add_node w {pattern.label(pattern.nodes()[0])}\n"
            f"add_edge w {nodes[0]}\n"
            f"remove_edge w {nodes[0]}\n"
            "remove_node w\n",
            encoding="utf-8",
        )
        code = main(
            [
                "stream", str(path1), str(path2),
                "--script", str(script),
                "--variant", "bj", "--label-function", "indicator",
                "--batch", "2", "--top", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# initial:" in out
        assert "# batch 1:" in out
        assert "# batch 2:" in out
        assert "incremental runs" in out

    def test_script_required(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["stream", "a", "b"])


class TestExperiment:
    def test_table2(self, capsys):
        assert main(["experiment", "table2"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_fig7_small_scale(self, capsys):
        assert main(["experiment", "fig7", "--scale", "0.3"]) == 0
        assert "Figure 7" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "tableX"])


class TestExamplesListing:
    def test_lists_scripts(self, capsys):
        assert main(["examples"]) == 0
        out = capsys.readouterr().out
        assert "quickstart.py" in out


class TestParser:
    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])
