"""Tests for the pattern-matching case study (Table 6 machinery)."""

import pytest

from repro.apps.pattern_matching import (
    FSimMatcher,
    GFinderMatcher,
    NagaMatcher,
    Query,
    Scenario,
    StrongSimulationMatcher,
    TSpanMatcher,
    evaluate_all,
    evaluate_matcher,
    f1_score,
    generate_query,
    generate_workload,
)
from repro.apps.pattern_matching.evaluation import render_table6
from repro.datasets import load_dataset
from repro.graph.subgraph import weakly_connected_components
from repro.simulation import Variant


@pytest.fixture(scope="module")
def amazon():
    return load_dataset("amazon", scale=0.5)


class TestQueries:
    def test_exact_query_is_subgraph(self, amazon):
        query = generate_query(amazon, 6, Scenario.EXACT, seed=3)
        assert query.graph.num_nodes == 6
        assert len(query.truth) == 6
        for q_source, q_target in query.graph.edges():
            assert amazon.has_edge(query.truth[q_source], query.truth[q_target])
        for q in query.graph.nodes():
            assert query.graph.label(q) == amazon.label(query.truth[q])

    def test_noisy_e_perturbs_edges_only(self, amazon):
        query = generate_query(amazon, 8, Scenario.NOISY_E, seed=5)
        for q in query.graph.nodes():
            assert query.graph.label(q) == amazon.label(query.truth[q])
        # the noisy query stays weakly connected
        assert len(weakly_connected_components(query.graph)) == 1

    def test_noisy_l_changes_some_label(self, amazon):
        changed_any = False
        for seed in range(6):
            query = generate_query(amazon, 8, Scenario.NOISY_L, seed=seed)
            edges = set(query.graph.edges())
            truth_edges = {
                (s, t)
                for s, t in [
                    (qs, qt)
                    for qs in query.graph.nodes()
                    for qt in query.graph.nodes()
                ]
                if (s, t) in edges
            }
            assert edges == truth_edges  # structure untouched
            changed_any |= any(
                query.graph.label(q) != amazon.label(query.truth[q])
                for q in query.graph.nodes()
            )
        assert changed_any

    def test_workload_sizes_and_determinism(self, amazon):
        workload = generate_workload(
            amazon, Scenario.EXACT, num_queries=5, min_size=3, max_size=6, seed=7
        )
        assert len(workload) == 5
        assert all(3 <= q.graph.num_nodes <= 6 for q in workload)
        again = generate_workload(
            amazon, Scenario.EXACT, num_queries=5, min_size=3, max_size=6, seed=7
        )
        for first, second in zip(workload, again):
            assert first.graph.same_structure(second.graph)

    def test_scenario_flags(self):
        assert Scenario.COMBINED.has_edge_noise
        assert Scenario.COMBINED.has_label_noise
        assert not Scenario.EXACT.has_edge_noise
        assert not Scenario.NOISY_E.has_label_noise


class TestF1:
    def test_perfect_match(self):
        truth = {"q0": 1, "q1": 2}
        assert f1_score({"q0": 1, "q1": 2}, truth) == 1.0

    def test_empty_match(self):
        assert f1_score(None, {"q0": 1}) == 0.0
        assert f1_score({}, {"q0": 1}) == 0.0

    def test_partial_match(self):
        truth = {"q0": 1, "q1": 2, "q2": 3, "q3": 4}
        match = {"q0": 1, "q1": 2, "q2": 99}
        precision, recall = 2 / 3, 2 / 4
        expected = 2 * precision * recall / (precision + recall)
        assert f1_score(match, truth) == pytest.approx(expected)

    def test_all_wrong(self):
        assert f1_score({"q0": 9}, {"q0": 1}) == 0.0


class TestMatchers:
    @pytest.mark.parametrize(
        "matcher",
        [
            FSimMatcher(Variant.S),
            FSimMatcher(Variant.DP),
            TSpanMatcher(1),
            StrongSimulationMatcher(),
            NagaMatcher(),
            GFinderMatcher(),
        ],
        ids=lambda m: m.name,
    )
    def test_exact_query_scores_well(self, matcher, amazon):
        total = 0.0
        queries = [
            generate_query(amazon, 5, Scenario.EXACT, seed=s) for s in range(4)
        ]
        for query in queries:
            total += f1_score(matcher.match(query.graph, amazon), query.truth)
        assert total / len(queries) > 0.15, matcher.name

    def test_fsim_survives_label_noise(self, amazon):
        matcher = FSimMatcher(Variant.S)
        queries = [
            generate_query(amazon, 6, Scenario.NOISY_L, seed=s) for s in range(4)
        ]
        scores = [
            f1_score(matcher.match(q.graph, amazon), q.truth) for q in queries
        ]
        assert max(scores) > 0.4

    def test_strong_sim_none_when_impossible(self, amazon):
        from repro.graph import from_edges

        query = from_edges([("a", "b")], {"a": "no-such", "b": "labels"})
        assert StrongSimulationMatcher().match(query, amazon) is None

    def test_tspan_budget_ordering(self, amazon):
        # a larger edit budget can only find more (never fewer) matches
        queries = [
            generate_query(amazon, 6, Scenario.NOISY_E, seed=s) for s in range(4)
        ]
        found1 = sum(
            1 for q in queries if TSpanMatcher(1).match(q.graph, amazon) is not None
        )
        found3 = sum(
            1 for q in queries if TSpanMatcher(3).match(q.graph, amazon) is not None
        )
        assert found3 >= found1

    def test_tspan_injective(self, amazon):
        query = generate_query(amazon, 6, Scenario.EXACT, seed=11)
        match = TSpanMatcher(0).match(query.graph, amazon)
        assert match is not None
        assert len(set(match.values())) == len(match)


class TestEvaluation:
    def test_evaluate_matcher_report(self, amazon):
        queries = generate_workload(
            amazon, Scenario.EXACT, num_queries=3, max_size=5, seed=2
        )
        report = evaluate_matcher(FSimMatcher(Variant.S), queries, amazon)
        assert report.num_queries == 3
        assert 0.0 <= report.avg_f1 <= 1.0
        assert report.matcher == "FSims"

    def test_no_results_cell(self, amazon):
        class NullMatcher:
            name = "null"

            def match(self, query, data):
                return None

        queries = generate_workload(
            amazon, Scenario.EXACT, num_queries=2, max_size=4, seed=3
        )
        report = evaluate_matcher(NullMatcher(), queries, amazon)
        assert report.no_results
        assert report.cell() == "-"

    def test_table6_pipeline(self, amazon):
        results = evaluate_all(
            amazon,
            [NagaMatcher(), FSimMatcher(Variant.S)],
            scenarios=[Scenario.EXACT, Scenario.NOISY_L],
            num_queries=3,
            max_size=5,
            seed=4,
        )
        text = render_table6(results)
        assert "exact" in text
        assert "FSims" in text
        assert len(results) == 2
