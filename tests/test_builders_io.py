"""Tests for graph builders and IO round-trips."""

import pytest

from repro.exceptions import GraphError
from repro.graph import (
    LabeledDigraph,
    from_adjacency,
    from_edges,
    from_networkx,
    load_graph,
    load_graph_json,
    relabel_to_integers,
    save_graph,
    save_graph_json,
    to_networkx,
    union,
)


def sample_graph():
    return from_edges(
        edges=[("a", "b"), ("b", "c")],
        labels={"a": "X", "b": "Y", "c": "X", "iso": "Z"},
        name="sample",
    )


class TestBuilders:
    def test_from_edges_includes_isolated_nodes(self):
        g = sample_graph()
        assert g.num_nodes == 4
        assert g.num_edges == 2
        assert g.has_node("iso")
        assert g.out_degree("iso") == 0

    def test_from_adjacency(self):
        g = from_adjacency({"a": ["b", "c"], "b": []}, {"a": 1, "b": 2, "c": 3})
        assert g.out_neighbors("a") == ("b", "c")
        assert g.num_edges == 2

    def test_relabel_to_integers(self):
        g = sample_graph()
        renamed, mapping = relabel_to_integers(g)
        assert set(renamed.nodes()) == {0, 1, 2, 3}
        assert renamed.num_edges == g.num_edges
        assert renamed.label(mapping["a"]) == "X"
        assert renamed.has_edge(mapping["a"], mapping["b"])

    def test_union_disjoint(self):
        g1 = from_edges([("a", "b")], {"a": "X", "b": "X"})
        g2 = from_edges([(1, 2)], {1: "Y", 2: "Y"})
        merged = union(g1, g2)
        assert merged.num_nodes == 4
        assert merged.num_edges == 2

    def test_union_overlapping_rejected(self):
        g1 = from_edges([], {"a": "X"})
        g2 = from_edges([], {"a": "Y"})
        with pytest.raises(GraphError):
            union(g1, g2)


class TestNetworkxBridge:
    def test_round_trip_directed(self):
        g = sample_graph()
        nx_graph = to_networkx(g)
        back = from_networkx(nx_graph)
        assert back.same_structure(g)

    def test_from_networkx_undirected_symmetrised(self):
        import networkx as nx

        nx_graph = nx.Graph()
        nx_graph.add_node(1, label="A")
        nx_graph.add_node(2, label="B")
        nx_graph.add_edge(1, 2)
        g = from_networkx(nx_graph)
        assert g.has_edge(1, 2)
        assert g.has_edge(2, 1)

    def test_from_networkx_default_labels(self):
        import networkx as nx

        nx_graph = nx.DiGraph()
        nx_graph.add_node("n1")
        g = from_networkx(nx_graph)
        assert g.label("n1") == "n1"


class TestIO:
    def test_text_round_trip(self, tmp_path):
        g = sample_graph()
        path = tmp_path / "graph.tsv"
        save_graph(g, path)
        loaded = load_graph(path)
        assert loaded.num_nodes == g.num_nodes
        assert loaded.num_edges == g.num_edges
        assert loaded.label("a") == "X"
        assert loaded.has_edge("a", "b")

    def test_text_load_rejects_malformed(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("v\ta\tX\nbogus line\n")
        with pytest.raises(GraphError):
            load_graph(path)

    def test_text_load_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "ok.tsv"
        path.write_text("# comment\n\nv\ta\tX\n")
        g = load_graph(path)
        assert g.num_nodes == 1

    def test_json_round_trip_preserves_types(self, tmp_path):
        g = LabeledDigraph("typed")
        g.add_node(1, "int-node")
        g.add_node(("t", 2), "tuple-node")
        g.add_edge(1, ("t", 2))
        path = tmp_path / "graph.json"
        save_graph_json(g, path)
        loaded = load_graph_json(path)
        assert loaded.has_node(1)
        assert loaded.has_node(("t", 2))
        assert loaded.has_edge(1, ("t", 2))
        assert loaded.name == "typed"
