"""Tests for repro.obs and its integration across the service stack.

The observability contract has two halves:

- **it observes**: a query traced through a ReplicaSetClient yields one
  trace whose spans cover client -> server -> scheduler -> store ->
  engine across the replica hop; overload events land in counters that
  agree with the scheduler's own stats; replication narrates its state
  transitions as parseable ``event=...`` lines carrying trace ids;
- **it never perturbs**: disabling the registry turns every mutator
  into a no-op, and instrumented responses stay bitwise identical to
  uninstrumented ones (asserted in bench_observability on the full
  workload; the unit tests here pin the mechanisms).

The metrics registry is process-global, so every test that asserts on
counter values runs under the ``fresh_registry`` fixture.
"""

import asyncio
import json
import logging
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FSimConfig
from repro.exceptions import ServiceError, ServiceOverloadedError
from repro.graph.generators import random_graph, uniform_labels
from repro.obs import log as obs_log
from repro.obs import metrics, profiling, tracing
from repro.obs.metrics import COUNT_BUCKETS, MetricsRegistry, parse_exposition
from repro.service import (
    GraphStore,
    MicroBatchScheduler,
    ReplicaSetClient,
    ServerThread,
    ServiceClient,
    WriteAheadLog,
)
from repro.simulation import Variant


def make_graph(num_nodes=18, num_edges=45, labels=3, seed=5):
    """Deterministic graph; calling twice yields bitwise-equal twins."""
    return random_graph(
        num_nodes, num_edges,
        uniform_labels(num_nodes, labels, seed=seed), seed=seed + 1,
    )


def numpy_config(**overrides):
    options = dict(variant=Variant.B, label_function="indicator",
                   backend="numpy")
    options.update(overrides)
    return FSimConfig(**options)


def register_durable(store, name="g", graph=None):
    if graph is None:
        graph = make_graph()
    source = {
        "nodes": [[node, graph.label(node)] for node in graph.nodes()],
        "edges": [list(edge) for edge in graph.edges()],
    }
    store.register(name, graph, source=source)
    return graph


def wait_for(predicate, timeout=30.0, interval=0.05, message="condition"):
    deadline = time.time() + timeout
    while time.time() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {message}")


@pytest.fixture
def fresh_registry():
    """A clean, enabled process-global registry; restores prior mode."""
    prior = metrics.enabled()
    metrics.configure(enabled=True)
    metrics.REGISTRY.reset()
    yield metrics.REGISTRY
    metrics.REGISTRY.reset()
    metrics.configure(enabled=prior)


# ----------------------------------------------------------------------
# metrics primitives
# ----------------------------------------------------------------------
class TestMetricsPrimitives:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry(enabled=True)
        requests = registry.counter("requests_total", "Requests.", op="x")
        requests.inc()
        requests.inc(3)
        assert requests.value == 4
        depth = registry.gauge("depth")
        depth.set(7)
        depth.inc(2)
        depth.dec(4)
        assert depth.value == 5

    def test_counter_is_interned_per_label_set(self):
        registry = MetricsRegistry(enabled=True)
        a1 = registry.counter("c", op="a")
        a2 = registry.counter("c", op="a")
        b = registry.counter("c", op="b")
        assert a1 is a2 and a1 is not b
        a1.inc()
        assert registry.get("c", op="a").value == 1
        assert registry.get("c", op="b").value == 0
        assert registry.get("c", op="missing") is None

    def test_histogram_percentiles_bracket_the_data(self):
        registry = MetricsRegistry(enabled=True)
        hist = registry.histogram("latency_seconds")
        values = [0.001 * (i + 1) for i in range(100)]  # 1ms .. 100ms
        for value in values:
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 100
        assert snap["sum"] == pytest.approx(sum(values))
        assert snap["min"] == values[0] and snap["max"] == values[-1]
        # interpolated percentiles stay inside the observed range and
        # are monotone
        assert values[0] <= snap["p50"] <= snap["p95"] <= snap["p99"]
        assert snap["p99"] <= values[-1]
        # p50 lands near the median, within one log-spaced bucket
        assert 0.025 <= snap["p50"] <= 0.1

    def test_histogram_single_observation_clamps_to_it(self):
        # A degenerate (single-point) distribution has every quantile
        # equal to that point *bitwise* -- interpolating inside the
        # crossing bucket would drift off it.
        registry = MetricsRegistry(enabled=True)
        hist = registry.histogram("h")
        hist.observe(0.0123)
        snap = hist.snapshot()
        assert snap["p50"] == snap["p95"] == snap["p99"] == 0.0123
        # repeated identical observations stay exact too
        hist.observe(0.0123)
        hist.observe(0.0123)
        snap = hist.snapshot()
        assert snap["p50"] == snap["p95"] == snap["p99"] == 0.0123

    def test_count_buckets_for_batch_sizes(self):
        registry = MetricsRegistry(enabled=True)
        hist = registry.histogram("batch", buckets=COUNT_BUCKETS)
        for size in (1, 1, 2, 8, 32):
            hist.observe(size)
        snap = hist.snapshot()
        assert snap["count"] == 5 and snap["max"] == 32

    def test_disabled_registry_mutators_are_noops(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("c")
        gauge = registry.gauge("g")
        hist = registry.histogram("h")
        counter.inc(10)
        gauge.set(5)
        hist.observe(1.0)
        assert counter.value == 0
        assert gauge.value == 0
        assert hist.snapshot()["count"] == 0
        # flipping the switch re-arms the same children
        registry.enabled = True
        counter.inc()
        assert counter.value == 1

    def test_exposition_parses_back(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("reqs_total", "Requests served.", op="topk").inc(3)
        registry.gauge("depth", "Queue depth.").set(2)
        hist = registry.histogram("lat_seconds", "Latency.")
        hist.observe(0.004)
        hist.observe(0.02)
        families = parse_exposition(registry.exposition())
        assert families["reqs_total"]["type"] == "counter"
        assert families["depth"]["type"] == "gauge"
        assert families["lat_seconds"]["type"] == "histogram"
        names = {name for name, _, _ in families["lat_seconds"]["samples"]}
        assert {"lat_seconds_bucket", "lat_seconds_sum",
                "lat_seconds_count"} <= names
        count = [value for name, _, value
                 in families["lat_seconds"]["samples"]
                 if name == "lat_seconds_count"]
        assert count == [2.0]

    def test_report_mirrors_snapshot(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("c", op="a").inc(2)
        report = registry.report()
        assert report["c"]["type"] == "counter"
        assert report["c"]["series"] == [{"labels": {"op": "a"},
                                          "value": 2}]

    def test_family_aggregates(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("t_total", op="a").inc(2)
        registry.counter("t_total", op="b").inc(5)
        assert registry.family_total("t_total") == 7
        assert registry.family_total("t_total", match={"op": "a"}) == 2
        assert registry.family_total("missing") == 0.0
        registry.gauge("g", shard="0").set(3)
        registry.gauge("g", shard="1").set(9)
        assert registry.family_max("g") == 9
        hist_a = registry.histogram("h_seconds", op="a")
        hist_b = registry.histogram("h_seconds", op="b")
        hist_a.observe(0.002)
        hist_b.observe(0.002)
        hist_b.observe(5.0)
        totals = registry.histogram_totals("h_seconds")
        assert totals["count"] == 3
        assert totals["sum"] == pytest.approx(5.004)
        assert len(totals["counts"]) == len(totals["bounds"]) + 1


# ----------------------------------------------------------------------
# exposition escaping (label values are arbitrary strings)
# ----------------------------------------------------------------------
class TestExpositionEscaping:
    HOSTILE = [
        'back\\slash',
        'quo"te',
        'new\nline',
        'all\\three" \n at once',
        '{brace,comma=eq}',
        'trailing\\',
        '',
    ]

    def test_hostile_label_values_round_trip(self):
        registry = MetricsRegistry(enabled=True)
        for index, value in enumerate(self.HOSTILE):
            registry.counter("hostile_total", "Hostile.",
                             key=value).inc(index + 1)
        families = parse_exposition(registry.exposition())
        seen = {labels["key"]: value for _, labels, value
                in families["hostile_total"]["samples"]}
        assert seen == {value: float(index + 1)
                        for index, value in enumerate(self.HOSTILE)}

    def test_render_is_the_parse_inverse(self):
        from repro.obs.metrics import render_exposition

        registry = MetricsRegistry(enabled=True)
        registry.counter("x_total", "Help with \"quotes\" and \\.",
                         k='v"w\\y\nz').inc(3)
        registry.gauge("g", "G.").set(2)
        first = parse_exposition(registry.exposition())
        second = parse_exposition(render_exposition(first))
        assert first == second

    @pytest.mark.parametrize("bad_line", [
        'oops{k="unterminated} 1',
        'oops{k="v" 1',
        'oops{k=v} 1',
        'oops{k="v"',
    ])
    def test_malformed_sample_lines_fail_loudly(self, bad_line):
        text = f"# TYPE oops counter\n{bad_line}\n"
        with pytest.raises(ValueError):
            parse_exposition(text)

    @settings(max_examples=60, deadline=None)
    @given(
        labels=st.dictionaries(
            keys=st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True),
            values=st.text(
                alphabet=st.characters(
                    codec="ascii", min_codepoint=32, max_codepoint=126,
                ) | st.sampled_from(["\n", "\\", '"']),
                max_size=24,
            ),
            min_size=1, max_size=4,
        ),
        value=st.floats(allow_nan=False, allow_infinity=False,
                        width=32),
    )
    def test_label_round_trip_property(self, labels, value):
        registry = MetricsRegistry(enabled=True)
        registry.gauge("prop_gauge", "Property.", **labels).set(value)
        families = parse_exposition(registry.exposition())
        samples = families["prop_gauge"]["samples"]
        assert len(samples) == 1
        name, parsed_labels, parsed_value = samples[0]
        assert name == "prop_gauge"
        assert parsed_labels == labels
        assert parsed_value == float(value)


# ----------------------------------------------------------------------
# concurrent scrape vs mutate
# ----------------------------------------------------------------------
class TestScrapeVsMutate:
    def test_scrapes_parse_and_counters_stay_monotone(self,
                                                      fresh_registry):
        """Hammer the ``metrics`` op while mutations stream.

        Every scrape must be a parseable exposition document, and the
        counters visible across consecutive scrapes must be monotone
        (a scrape mid-mutation never observes a counter going back)."""
        store = GraphStore(default_config=numpy_config())
        graph = make_graph()
        store.register("g", graph)
        nodes = list(graph.nodes())
        with ServerThread(store, window=0.001) as harness:
            stop = threading.Event()
            failures = []

            def mutate_loop():
                client = ServiceClient(port=harness.port)
                try:
                    index = 0
                    while not stop.is_set():
                        index += 1
                        client.mutate("g", [
                            ("add_node", f"scrape-{index}", "A"),
                            ("add_edge", f"scrape-{index}", nodes[0]),
                        ])
                        client.fsim("g")
                except Exception as exc:  # pragma: no cover
                    failures.append(exc)
                finally:
                    client.close()

            writer = threading.Thread(target=mutate_loop, daemon=True)
            writer.start()
            client = ServiceClient(port=harness.port)
            try:
                previous = {}
                parsed_scrapes = 0
                deadline = time.time() + 4.0
                while time.time() < deadline and parsed_scrapes < 40:
                    families = parse_exposition(
                        client.metrics()["exposition"]
                    )
                    parsed_scrapes += 1
                    current = {}
                    for name, family in families.items():
                        if family.get("type") != "counter":
                            continue
                        for sample, labels, value in family["samples"]:
                            key = (sample,
                                   tuple(sorted(labels.items())))
                            current[key] = value
                    for key, value in current.items():
                        assert value >= previous.get(key, 0.0), (
                            f"counter went backwards: {key}"
                        )
                    previous = current
            finally:
                stop.set()
                writer.join(timeout=30)
                client.close()
            assert not failures
            assert parsed_scrapes >= 10


# ----------------------------------------------------------------------
# tracing primitives
# ----------------------------------------------------------------------
class TestTracing:
    def test_span_requires_a_sink(self):
        handle = tracing.TraceHandle("t1", "topk")
        with tracing.span("store.topk"):
            pass  # no sink installed: the shared null timer, no record
        assert not handle.spans
        with tracing.use_sink((handle,)):
            with tracing.span("store.topk", batch=3):
                pass
        assert [s["name"] for s in handle.spans] == ["store.topk"]
        assert handle.spans[0]["tags"] == {"batch": 3}

    def test_use_sink_fans_out_and_scopes_trace_id(self):
        one = tracing.TraceHandle("aaa", "fsim")
        two = tracing.TraceHandle("bbb", "fsim")
        with tracing.use_sink((one, None, two)):
            # a coalesced batch (two traced members): spans fan out to
            # both, but there is no single ambient trace id
            assert tracing.current_trace_id() is None
            tracing.emit_span("store.fsim", time.time(), 0.01)
            with tracing.use_sink((one,)):
                assert tracing.current_trace_id() == "aaa"
            assert tracing.current_trace_id() is None
        assert tracing.current_trace_id() is None
        assert [s["name"] for s in one.spans] == ["store.fsim"]
        assert [s["name"] for s in two.spans] == ["store.fsim"]

    def test_handle_to_dict_sorts_spans(self):
        handle = tracing.TraceHandle("t", "topk")
        handle.add_span("later", 200.0, 0.5)
        handle.add_span("earlier", 100.0, 0.1, op="topk")
        trace = handle.to_dict()
        assert [s["name"] for s in trace["spans"]] == ["earlier", "later"]
        assert trace["duration"] == 0.5
        assert trace["spans"][0]["tags"] == {"op": "topk"}

    def test_recorder_slow_ring_and_merge(self):
        recorder = tracing.TraceRecorder(slow_ms=50.0)
        fast = recorder.begin("id1", "topk")
        fast.add_span("server.dispatch", 1.0, 0.001)
        recorder.finish(fast)
        slow = recorder.begin("id1", "topk")  # same logical trace
        slow.add_span("server.dispatch", 2.0, 0.2)
        recorder.finish(slow)
        assert recorder.stats()["traces"] == 2
        assert recorder.stats()["slow_queries"] == 1
        assert [t["trace_id"] for t in recorder.slow()] == ["id1"]
        merged = recorder.get("id1")
        assert len(merged["spans"]) == 2
        assert merged["duration"] == 0.2
        assert recorder.get("nope") is None


# ----------------------------------------------------------------------
# profiling hooks
# ----------------------------------------------------------------------
class TestProfiling:
    def test_phase_records_profile_metrics_and_spans(self, fresh_registry):
        profile = profiling.PhaseProfile()
        handle = tracing.TraceHandle("t", "fsim")
        with tracing.use_sink((handle,)):
            with profiling.profiled(profile):
                with profiling.phase("engine.iterate"):
                    pass
                with profiling.phase("engine.iterate"):
                    pass
        snap = profile.snapshot()
        assert snap["engine.iterate"]["count"] == 2
        assert [s["name"] for s in handle.spans] == ["engine.iterate"] * 2
        hist = fresh_registry.get(profiling.PHASE_HISTOGRAM,
                                  phase="engine.iterate")
        assert hist is not None and hist.snapshot()["count"] == 2

    def test_phase_is_null_when_nothing_listens(self, fresh_registry):
        metrics.configure(enabled=False)
        timer = profiling.phase("engine.iterate")
        assert timer.__class__.__name__ == "_NullTimer"

    def test_iterations_histogram_labels_convergence(self, fresh_registry):
        profiling.observe_iterations(7, converged=True)
        profiling.observe_iterations(100, converged=False)
        converged = fresh_registry.get(profiling.ITERATIONS_HISTOGRAM,
                                       converged="true")
        diverged = fresh_registry.get(profiling.ITERATIONS_HISTOGRAM,
                                      converged="false")
        assert converged.snapshot()["count"] == 1
        assert diverged.snapshot()["max"] == 100


# ----------------------------------------------------------------------
# structured logging
# ----------------------------------------------------------------------
class TestStructuredLog:
    def test_format_parse_round_trip(self):
        fields = {
            "primary": "127.0.0.1:9000",
            "error": 'connection "reset" by peer = sad',
            "lag": 12,
            "note": "two words",
            "empty": "",
            "skipped": None,
        }
        message = obs_log.format_event("replica.disconnected", fields)
        parsed = obs_log.parse_event(message)
        assert parsed["event"] == "replica.disconnected"
        assert parsed["primary"] == "127.0.0.1:9000"
        assert parsed["error"] == 'connection "reset" by peer = sad'
        assert parsed["lag"] == "12"
        assert parsed["note"] == "two words"
        assert parsed["empty"] == ""
        assert "skipped" not in parsed
        assert obs_log.parse_event("plain message") is None

    def test_log_event_emits_and_counts(self, fresh_registry, caplog):
        logger = obs_log.get_logger("service.replication")
        assert logger.name == "repro.service.replication"
        with caplog.at_level(logging.INFO, logger="repro"):
            obs_log.log_event(logger, "replica.lag", state="behind",
                              lag=80, trace_id="abc123")
        parsed = obs_log.parse_event(caplog.records[-1].getMessage())
        assert parsed == {"event": "replica.lag", "lag": "80",
                          "state": "behind", "trace_id": "abc123"}
        counter = fresh_registry.get(obs_log.EVENT_COUNTER,
                                     event="replica.lag")
        assert counter.value == 1


# ----------------------------------------------------------------------
# single-server integration: metrics / trace / stats ops
# ----------------------------------------------------------------------
class TestServerObservability:
    def test_metrics_op_scrapes_and_stats_fold_in(self, fresh_registry):
        store = GraphStore(default_config=numpy_config())
        store.register("g", make_graph())
        with ServerThread(store, window=0.001) as server:
            with ServiceClient(port=server.port, tracing=True) as client:
                client.topk("g", make_graph().nodes()[0], k=2)
                scrape = client.metrics()
                stats = client.stats()
        assert scrape["enabled"] is True
        families = parse_exposition(scrape["exposition"])
        assert "repro_requests_total" in families
        assert "repro_request_seconds" in families
        assert "repro_sched_batch_size" in families
        report = stats["metrics"]
        served = [series for series in
                  report["repro_requests_total"]["series"]
                  if series["labels"] == {"op": "topk"}]
        assert served and served[0]["value"] >= 1
        assert stats["tracing"]["traces"] >= 1
        assert "peak_pending" in stats["health"]
        assert "slow_queries" in stats["health"]

    def test_trace_op_returns_the_request_spans(self, fresh_registry):
        store = GraphStore(default_config=numpy_config())
        store.register("g", make_graph())
        with ServerThread(store, window=0.001) as server:
            with ServiceClient(port=server.port, tracing=True) as client:
                client.topk("g", make_graph().nodes()[0], k=2)
                assert client.last_trace_id is not None
                found = client.trace_query()  # defaults to last_trace_id
        assert found["found"] is True
        trace = found["trace"]
        assert trace["trace_id"] == client.last_trace_id
        names = [span["name"] for span in trace["spans"]]
        assert {"server.dispatch", "sched.queue", "sched.lock_wait",
                "sched.execute", "store.topk"} <= set(names)
        # the client recorded its own side of the same trace
        local = [entry for entry in client.trace_log
                 if entry["trace_id"] == client.last_trace_id]
        assert local
        assert local[0]["spans"][0]["name"] == "client.request"

    def test_untraced_requests_stay_off_the_recorder(self, fresh_registry):
        store = GraphStore(default_config=numpy_config())
        store.register("g", make_graph())
        with ServerThread(store, window=0.001) as server:
            with ServiceClient(port=server.port) as client:  # tracing off
                client.topk("g", make_graph().nodes()[0], k=2)
                stats = client.stats()
        assert stats["tracing"]["traces"] == 0

    def test_slow_query_ring_over_the_wire(self, fresh_registry):
        store = GraphStore(default_config=numpy_config())
        store.register("g", make_graph())
        with ServerThread(store, window=0.001,
                          slow_query_ms=0.0) as server:
            with ServiceClient(port=server.port, tracing=True) as client:
                for query in make_graph().nodes()[:3]:
                    client.topk("g", query, k=2)
                slow = client.trace_query(slow=True)
                health = client.stats()["health"]
        assert slow["slow_ms"] == 0.0
        assert len(slow["traces"]) == 3
        assert health["slow_queries"] == 3


# ----------------------------------------------------------------------
# overload accounting (admission control under concurrent load)
# ----------------------------------------------------------------------
class TestOverloadAccounting:
    def test_rejections_and_peaks_agree_with_counters(self,
                                                      fresh_registry):
        store = GraphStore(default_config=numpy_config())
        graph = make_graph(num_nodes=30, num_edges=90)
        store.register("g", graph)
        rejected, completed = [], []
        with ServerThread(store, window=0.3, max_pending=1) as server:

            def ask(index):
                try:
                    with ServiceClient(port=server.port) as client:
                        completed.append(
                            client.topk("g", graph.nodes()[index], k=2)
                        )
                except ServiceOverloadedError as exc:
                    rejected.append(exc)

            threads = [threading.Thread(target=ask, args=(i,))
                       for i in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            with ServiceClient(port=server.port) as probe:
                stats = probe.stats()
        assert rejected and completed
        sched = stats["scheduler"]
        # the scheduler's own stats and the registry tell one story
        assert sched["rejected"] == len(rejected)
        assert fresh_registry.get(
            "repro_sched_rejected_total"
        ).value == len(rejected)
        assert sched["peak_pending"] == 1  # admission cap held
        assert stats["health"]["peak_pending"] == sched["peak_pending"]
        # the queue fully drained: gauge agrees
        assert fresh_registry.get("repro_sched_queue_depth").value == 0
        served = fresh_registry.get("repro_requests_total", op="topk")
        assert served.value == len(completed) + len(rejected)

    def test_abort_pending_accounts_and_faults_callers(self,
                                                       fresh_registry):
        store = GraphStore(default_config=numpy_config())
        store.register("g", make_graph())

        async def _run():
            scheduler = MicroBatchScheduler(store, window=30.0,
                                            max_batch=64)
            request = {"graph1": "g", "graph2": "g", "query": 0, "k": 2,
                       "params": None}
            tasks = [asyncio.ensure_future(
                scheduler.submit("topk", dict(request))
            ) for _ in range(3)]
            await asyncio.sleep(0.05)  # let all three enqueue
            aborted = scheduler.abort_pending("shutdown drain timed out")
            outcomes = await asyncio.gather(*tasks,
                                            return_exceptions=True)
            return scheduler, aborted, outcomes

        scheduler, aborted, outcomes = asyncio.run(_run())
        assert aborted == 3
        assert all(isinstance(o, ServiceError) for o in outcomes)
        assert scheduler.stats["aborted_requests"] == 3
        assert fresh_registry.get("repro_sched_aborted_total").value == 3
        assert fresh_registry.get("repro_sched_queue_depth").value == 0


# ----------------------------------------------------------------------
# CLI: `repro stats HOST:PORT` and `serve --slow-query-ms`
# ----------------------------------------------------------------------
class TestCliStats:
    def test_pretty_json_and_exposition(self, fresh_registry, capsys):
        from repro.cli import main

        store = GraphStore(default_config=numpy_config())
        store.register("g", make_graph())
        with ServerThread(store, window=0.001) as server:
            with ServiceClient(port=server.port, tracing=True) as client:
                client.topk("g", make_graph().nodes()[0], k=2)
            address = f"127.0.0.1:{server.port}"
            assert main(["stats", address]) == 0
            pretty = capsys.readouterr().out
            assert main(["stats", address, "--json"]) == 0
            raw = capsys.readouterr().out
            assert main(["stats", address, "--exposition"]) == 0
            scrape = capsys.readouterr().out
        assert "requests" in pretty and "g" in pretty
        parsed = json.loads(raw)
        assert "scheduler" in parsed and "metrics" in parsed
        assert "repro_requests_total" in parse_exposition(scrape)

    def test_serve_parser_accepts_slow_query_ms(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--graph", "g=/tmp/g.txt", "--slow-query-ms", "25"]
        )
        assert args.slow_query_ms == 25.0
        assert build_parser().parse_args(
            ["serve", "--graph", "g=/tmp/g.txt"]
        ).slow_query_ms is None


# ----------------------------------------------------------------------
# replication: structured events + the cross-hop trace (acceptance)
# ----------------------------------------------------------------------
class TestReplicationObservability:
    @staticmethod
    def _start_pair(tmp_path):
        store = GraphStore(default_config=numpy_config(),
                           wal=WriteAheadLog(tmp_path, sync="always"))
        register_durable(store)
        primary = ServerThread(store, window=0.001).start()
        replica_store = GraphStore(default_config=numpy_config())
        replica = ServerThread(
            replica_store, window=0.001,
            replicate_from=f"127.0.0.1:{primary.port}",
        ).start()
        return primary, replica

    @staticmethod
    def _wait_caught_up(replica_port, seq):
        with ServiceClient(port=replica_port, timeout=30.0) as client:
            def _caught_up():
                tail = client.stats()["replication"]["tail"]
                return tail["connected"] and tail["applied_seq"] >= seq \
                    and tail["lag_records"] == 0
            wait_for(_caught_up, message=f"replica catch-up to seq {seq}")

    def test_replica_lifecycle_emits_traceable_events(self, tmp_path,
                                                      fresh_registry,
                                                      caplog):
        with caplog.at_level(logging.INFO, logger="repro"):
            primary, replica = self._start_pair(tmp_path)
            try:
                self._wait_caught_up(replica.port, seq=1)
            finally:
                replica.stop()
                primary.stop()
        events = [obs_log.parse_event(record.getMessage())
                  for record in caplog.records
                  if record.name == "repro.service.replication"]
        events = [e for e in events if e]
        by_name = {e["event"] for e in events}
        assert {"replica.connected", "replica.bootstrap"} <= by_name
        # every lifecycle event ties back to the connection's trace id
        assert all(e.get("trace_id") for e in events)
        connected = next(e for e in events
                         if e["event"] == "replica.connected")
        assert connected["primary"].endswith(str(primary.port))
        counter = fresh_registry.get(obs_log.EVENT_COUNTER,
                                     event="replica.connected")
        assert counter is not None and counter.value >= 1

    def test_cross_hop_trace_covers_the_whole_stack(self, tmp_path,
                                                    fresh_registry):
        primary, replica = self._start_pair(tmp_path)
        try:
            self._wait_caught_up(replica.port, seq=1)

            async def _exercise():
                client = ReplicaSetClient(
                    f"127.0.0.1:{primary.port}",
                    [f"127.0.0.1:{replica.port}"],
                    timeout=30.0, tracing=True,
                )
                try:
                    # --- traced read over the replica hop (cold: the
                    # engine compiles and sweeps on this very request)
                    await client.fsim("g")
                    read_id = client.last_trace_id
                    assert read_id is not None
                    read_trace = await client.fetch_trace()
                    assert client.stats["replica_reads"] == 1

                    # --- traced write through the primary, applied on
                    # the follower under the same trace id
                    await client.mutate("g", [("add_node", 999, 0)])
                    write_id = client.last_trace_id
                    assert write_id is not None and write_id != read_id
                    self._wait_caught_up(replica.port, seq=2)
                    write_trace = await client.fetch_trace()
                    return read_trace, write_trace
                finally:
                    await client.close()

            read_trace, write_trace = asyncio.run(_exercise())
        finally:
            replica.stop()
            primary.stop()

        # one read trace spanning client -> server -> scheduler ->
        # store -> engine sweep, retrieved via the ``trace`` op
        read_names = [span["name"] for span in read_trace["spans"]]
        assert {"client.request", "server.dispatch", "sched.queue",
                "sched.lock_wait", "sched.execute", "store.fsim",
                "engine.iterate"} <= set(read_names)
        # wall-clock ordering across the hop: the client span starts
        # first and the server work nests inside it
        assert read_names[0] == "client.request"

        # the write trace additionally crosses the WAL and the
        # follower's apply path
        write_names = {span["name"] for span in write_trace["spans"]}
        assert {"client.request", "server.dispatch", "store.mutate",
                "wal.fsync", "replica.apply"} <= write_names
