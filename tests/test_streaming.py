"""The streaming subsystem: delta capture, patching, incremental sessions.

The central invariant: an :class:`~repro.streaming.session.IncrementalFSim`
session in the default ``replay`` mode is **observationally identical**
to recomputing from scratch after every delta -- scores, iteration
counts and per-iteration deltas, bitwise -- while touching only the
state the delta reaches.  Cold baselines are computed on the *same*
graph objects with the plan caches cleared (a structural copy reorders
adjacency lists, which legitimately perturbs the last ulp of the
order-sensitive reference semantics).
"""

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import FSimConfig, fsim_matrix
from repro.core.plan import (
    GraphPlan,
    PlanPatchError,
    clear_plan_caches,
    lower_graph,
    patch_cached_plan,
    patch_plan,
    plan_cache_stats,
    plan_patch_budget,
)
from repro.exceptions import ConfigError, GraphError
from repro.graph.digraph import LabeledDigraph
from repro.graph.generators import random_graph, uniform_labels
from repro.simulation import Variant
from repro.streaming import (
    DeltaLog,
    DeltaOp,
    IncrementalFSim,
    apply_script_op,
    parse_edit_script,
)


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_plan_caches()
    yield
    clear_plan_caches()


def small_graph(seed=0, n=10, labels=3):
    num_edges = min(3 * n, n * (n - 1))
    return random_graph(
        n, num_edges, uniform_labels(n, labels, seed=seed), seed=seed + 1
    )


def cold_reference(graph1, graph2, config):
    """What the repo computes without streaming: caches cold."""
    clear_plan_caches()
    return fsim_matrix(graph1, graph2, config=config)


def random_mutation(log, rng, next_id):
    """One random mutation through the log; returns the next fresh id."""
    graph = log.graph
    nodes = list(graph.nodes())
    choice = rng.random()
    if choice < 0.35 and len(nodes) > 1:
        source, target = rng.sample(nodes, 2)
        log.add_edge_if_absent(source, target)
    elif choice < 0.6 and graph.num_edges:
        log.remove_edge(*rng.choice(list(graph.edges())))
    elif choice < 0.72:
        log.add_node(f"x{next_id}", f"L{rng.randint(0, 2)}")
        next_id += 1
    elif choice < 0.85 and len(nodes) > 2:
        log.remove_node(rng.choice(nodes))
    elif nodes:
        log.set_label(rng.choice(nodes), f"L{rng.randint(0, 2)}")
    return next_id


# ----------------------------------------------------------------------
# DeltaLog
# ----------------------------------------------------------------------
class TestDeltaLog:
    def test_records_one_op_per_mutation(self):
        g = LabeledDigraph()
        log = DeltaLog(g)
        log.add_node("a", "X")
        log.add_node("b", "Y")
        log.add_edge("a", "b")
        log.set_label("b", "Z")
        delta = log.drain()
        assert [op.kind for op in delta.ops] == [
            "add_node", "add_node", "add_edge", "set_label",
        ]
        assert not delta.out_of_band
        assert delta.end_version - delta.base_version == 4

    def test_remove_node_expands_incident_edges(self):
        g = LabeledDigraph()
        for node in "abc":
            g.add_node(node, "X")
        g.add_edge("a", "b")
        g.add_edge("c", "a")
        g.add_edge("a", "a")  # self loop
        log = DeltaLog(g)
        log.remove_node("a")
        delta = log.drain()
        kinds = [op.kind for op in delta.ops]
        assert kinds == ["remove_edge", "remove_edge", "remove_edge",
                         "remove_node"]
        assert not delta.out_of_band
        assert not g.has_node("a")

    def test_no_ops_not_recorded(self):
        g = LabeledDigraph()
        g.add_node("a", "X")
        g.add_node("b", "X")
        g.add_edge("a", "b")
        log = DeltaLog(g)
        log.add_node("a", "X")
        log.set_label("a", "X")
        assert not log.add_edge_if_absent("a", "b")
        assert log.pending == 0
        assert not log.drain().out_of_band

    def test_add_node_with_new_label_records_set_label(self):
        g = LabeledDigraph()
        g.add_node("a", "X")
        log = DeltaLog(g)
        log.add_node("a", "Y")  # digraph semantics: relabel
        delta = log.drain()
        assert delta.ops == (DeltaOp("set_label", "a", "Y"),)

    def test_out_of_band_mutation_detected(self):
        g = small_graph()
        log = DeltaLog(g)
        log.add_node("fresh", "L0")
        g.add_node("sneaky", "L0")  # bypasses the log
        assert log.drain().out_of_band
        # drain resynchronizes
        log.add_node("fresh2", "L0")
        assert not log.drain().out_of_band

    def test_failed_mutation_not_recorded(self):
        g = small_graph()
        log = DeltaLog(g)
        with pytest.raises(Exception):
            log.add_edge("missing", "also-missing")
        assert log.pending == 0
        assert not log.drain().out_of_band

    def test_reads_delegate_blocked_mutators_raise(self):
        g = small_graph()
        log = DeltaLog(g)
        assert log.nodes() == g.nodes()
        assert log.num_nodes == g.num_nodes
        assert list(log) == list(g)
        with pytest.raises(GraphError):
            log.sort_adjacency()

    def test_edges_only_and_adjacency_changes(self):
        g = LabeledDigraph()
        for node in "abc":
            g.add_node(node, "X")
        log = DeltaLog(g)
        assert log.add_edge_if_absent("a", "b")
        delta = log.drain()
        assert delta.edges_only
        out_changed, in_changed = delta.adjacency_changes()
        assert out_changed == {"a"} and in_changed == {"b"}
        log.add_node("n", "L0")
        assert not log.drain().edges_only


# ----------------------------------------------------------------------
# plan patching
# ----------------------------------------------------------------------
def assert_plans_equal(patched, fresh):
    assert patched.nodes == fresh.nodes
    assert patched.index == fresh.index
    assert patched.labels == fresh.labels
    assert patched.lab_index == fresh.lab_index
    assert np.array_equal(patched.nlab, fresh.nlab)
    assert patched.nlab.dtype == fresh.nlab.dtype
    for mine, theirs in ((patched.out_csr, fresh.out_csr),
                         (patched.in_csr, fresh.in_csr)):
        assert np.array_equal(mine.indptr, theirs.indptr)
        assert np.array_equal(mine.indices, theirs.indices)
        assert mine.indices.dtype == theirs.indices.dtype
    assert len(patched.members) == len(fresh.members)
    for mine, theirs in zip(patched.members, fresh.members):
        assert np.array_equal(mine, theirs)


class TestPlanPatching:
    def test_randomized_scripts_match_fresh_lowering(self):
        for trial in range(60):
            rng = random.Random(trial)
            g = small_graph(seed=trial, n=rng.randint(2, 10))
            base = GraphPlan(g)
            log = DeltaLog(g)
            next_id = 0
            for _ in range(rng.randint(1, 10)):
                next_id = random_mutation(log, rng, next_id)
            delta = log.drain()
            assert_plans_equal(patch_plan(base, delta.ops), GraphPlan(g))

    def test_label_alphabet_churn_preserves_first_seen_order(self):
        g = LabeledDigraph()
        g.add_node("a", "X")
        g.add_node("b", "Y")
        base = GraphPlan(g)
        log = DeltaLog(g)
        log.set_label("a", "Y")   # X dies
        log.add_node("c", "X")    # X reborn at the END of the alphabet
        delta = log.drain()
        patched = patch_plan(base, delta.ops)
        fresh = GraphPlan(g)
        assert fresh.labels == ["Y", "X"]
        assert_plans_equal(patched, fresh)

    def test_corrupt_ops_raise(self):
        g = small_graph()
        plan = GraphPlan(g)
        with pytest.raises(PlanPatchError):
            patch_plan(plan, [DeltaOp("add_node", g.nodes()[0], "L0")])
        with pytest.raises(PlanPatchError):
            patch_plan(plan, [DeltaOp("remove_edge", "no", "pe")])
        with pytest.raises(PlanPatchError):
            patch_plan(plan, [DeltaOp("warp", "a", "b")])

    def test_patch_cached_plan_registers_hit(self):
        g = small_graph()
        lower_graph(g)
        base_version = g.version
        log = DeltaLog(g)
        log.add_edge_if_absent(g.nodes()[0], g.nodes()[5])
        delta = log.drain()
        patched = patch_cached_plan(g, delta.ops, base_version)
        assert patched is not None
        before = plan_cache_stats()["plan_misses"]
        assert lower_graph(g) is patched  # cache hit, no relowering
        assert plan_cache_stats()["plan_misses"] == before
        assert plan_cache_stats()["plan_patches"] == 1
        assert_plans_equal(patched, GraphPlan(g))

    def test_patch_cached_plan_declines_oversized_and_stale(self):
        g = small_graph()
        lower_graph(g)
        base_version = g.version
        log = DeltaLog(g)
        log.add_edge_if_absent(g.nodes()[0], g.nodes()[5])
        delta = log.drain()
        # stale base version
        assert patch_cached_plan(g, delta.ops, base_version - 1) is None
        # oversized delta
        huge = delta.ops * (plan_patch_budget(g) + 1)
        assert patch_cached_plan(g, huge, base_version) is None


# ----------------------------------------------------------------------
# incremental sessions: bitwise replay parity
# ----------------------------------------------------------------------
VARIANTS = [Variant.S, Variant.B, Variant.BJ, Variant.DP]


class TestReplayParity:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_edge_stream_matches_cold_bitwise(self, variant):
        """Edge-only deltas ride the compiled-patch fast path."""
        rng = random.Random(hash(variant.value) % 97)
        g = small_graph(seed=3, n=12)
        config = FSimConfig(variant=variant, label_function="indicator",
                            backend="numpy")
        session = IncrementalFSim(g, g, config)
        session.compute()
        for step in range(6):
            nodes = list(g.nodes())
            if rng.random() < 0.5 and g.num_edges:
                session.log1.remove_edge(*rng.choice(list(g.edges())))
            else:
                s, t = rng.sample(nodes, 2)
                session.log1.add_edge_if_absent(s, t)
            warm = session.compute()
            ref = cold_reference(g, g, config)
            assert warm.scores == ref.scores, step
            assert warm.iterations == ref.iterations
            assert warm.deltas == ref.deltas
        assert session.stats["compiled_patches"] == session.stats[
            "incremental_runs"
        ]
        assert session.stats["full_recompiles"] == 0

    @pytest.mark.parametrize("variant", [Variant.B, Variant.DP])
    def test_node_and_label_churn_matches_cold_bitwise(self, variant):
        """Non-edge deltas take the recompile + trajectory-remap path."""
        rng = random.Random(11)
        g1 = small_graph(seed=5, n=10)
        g2 = small_graph(seed=7, n=11)
        config = FSimConfig(variant=variant, label_function="indicator",
                            backend="numpy")
        session = IncrementalFSim(g1, g2, config)
        session.compute()
        next_id = 0
        for step in range(5):
            log = session.log1 if rng.random() < 0.6 else session.log2
            for _ in range(rng.randint(1, 4)):
                next_id = random_mutation(log, rng, next_id)
            warm = session.compute()
            ref = cold_reference(g1, g2, config)
            assert warm.scores == ref.scores, step
            assert warm.iterations == ref.iterations
            assert warm.deltas == ref.deltas

    def test_upper_bound_pruning_config(self):
        rng = random.Random(13)
        g1 = small_graph(seed=9, n=11)
        g2 = small_graph(seed=10, n=12)
        config = FSimConfig(variant=Variant.BJ, use_upper_bound=True,
                            alpha=0.3, beta=0.4, backend="numpy")
        session = IncrementalFSim(g1, g2, config)
        session.compute()
        for step in range(4):
            nodes = list(g1.nodes())
            s, t = rng.sample(nodes, 2)
            if rng.random() < 0.5 and g1.num_edges:
                session.log1.remove_edge(*rng.choice(list(g1.edges())))
            else:
                session.log1.add_edge_if_absent(s, t)
            warm = session.compute()
            ref = cold_reference(g1, g2, config)
            assert warm.scores == ref.scores, step
            assert warm.iterations == ref.iterations
            # pruned pairs answered through the alpha-fallback
            u, v = g1.nodes()[0], g2.nodes()[0]
            assert warm.score(u, v) == ref.score(u, v)
        # degree-sensitive bounds force the recompile path
        assert session.stats["compiled_patches"] == 0

    def test_pinned_pairs_stay_frozen(self):
        g = small_graph(seed=15, n=9)
        pinned = {(g.nodes()[0], g.nodes()[1]): 0.5}
        config = FSimConfig(variant=Variant.S, label_function="indicator",
                            pinned_pairs=pinned, backend="numpy")
        session = IncrementalFSim(g, g, config)
        session.compute()
        session.log1.add_edge_if_absent(g.nodes()[2], g.nodes()[3])
        warm = session.compute()
        ref = cold_reference(g, g, config)
        assert warm.scores == ref.scores
        assert warm.scores[(g.nodes()[0], g.nodes()[1])] == 0.5

    def test_out_of_band_mutation_resyncs_cold(self):
        g = small_graph(seed=17)
        config = FSimConfig(variant=Variant.S, backend="numpy")
        session = IncrementalFSim(g, g, config)
        session.compute()
        g.add_edge_if_absent(g.nodes()[0], g.nodes()[3])  # bypasses log
        warm = session.compute()
        ref = cold_reference(g, g, config)
        assert warm.scores == ref.scores
        assert session.stats["out_of_band_resyncs"] == 1

    def test_no_pending_delta_returns_cached_result(self):
        g = small_graph(seed=19)
        session = IncrementalFSim(g, g, FSimConfig(backend="numpy"))
        first = session.compute()
        assert session.compute() is first

    def test_patch_before_any_sparse_sweep_stays_exact(self):
        """Regression: patching a compiled instance whose lazy
        ``dep_targets`` was never materialized (cold run converged on
        full sweeps only) must not let it materialize later from the
        *patched* structures against the pre-patch ``dep_indptr``."""
        from repro.graph.generators import power_law_graph

        for seed in range(4):
            rng = random.Random(seed)
            g = power_law_graph(
                40, 2, uniform_labels(40, 3, seed=seed), seed=seed + 1
            )
            config = FSimConfig(variant=Variant.B, label_function="indicator",
                                theta=1.0, backend="numpy")
            session = IncrementalFSim(g, g, config)
            session.compute()
            nodes = list(g.nodes())
            for step in range(2):
                s, t = rng.sample(nodes, 2)
                while not session.log1.add_edge_if_absent(s, t):
                    s, t = rng.sample(nodes, 2)
                warm = session.compute()
                ref = cold_reference(g, g, config)
                assert warm.scores == ref.scores, (seed, step)
                assert warm.iterations == ref.iterations

    def test_failed_update_never_serves_stale_results(self):
        """Regression: a failure mid-update (delta already drained) must
        not leave a cached pre-delta result for the next compute()."""
        g = small_graph(seed=41, n=10)
        config = FSimConfig(variant=Variant.S, label_function="indicator",
                            backend="numpy")
        session = IncrementalFSim(g, g, config)
        session.compute()
        # shrink the budget so the next (recompile-path) update fails
        session.max_trajectory_mb = 1e-6
        session.log1.add_node("grown", "L0")
        with pytest.raises(ConfigError):
            session.compute()
        # relaxing the budget must recompute cold, not serve the
        # pre-delta cached result
        session.max_trajectory_mb = 1024.0
        fresh = session.compute()
        ref = cold_reference(g, g, config)
        assert fresh.scores == ref.scores
        assert any(u == "grown" or v == "grown" for u, v in fresh.scores)

    def test_python_backend_agrees(self):
        """Replay == cold numpy == reference python engine, end to end."""
        g = small_graph(seed=21, n=8)
        config = FSimConfig(variant=Variant.B, label_function="indicator")
        session = IncrementalFSim(g, g, config.with_options(backend="numpy"))
        session.compute()
        session.log1.add_edge_if_absent(g.nodes()[0], g.nodes()[5])
        warm = session.compute()
        clear_plan_caches()
        reference = fsim_matrix(
            g, g, config=config.with_options(backend="python")
        )
        assert warm.scores.keys() == reference.scores.keys()
        for pair, value in reference.scores.items():
            assert warm.scores[pair] == value
        assert warm.iterations == reference.iterations


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    variant=st.sampled_from([Variant.S, Variant.B, Variant.BJ, Variant.DP]),
    steps=st.integers(min_value=1, max_value=3),
)
def test_property_randomized_edit_scripts_bitwise_parity(seed, variant, steps):
    """Satellite: randomized edit scripts, incremental == cold bitwise on
    both backends."""
    clear_plan_caches()
    rng = random.Random(seed)
    n = rng.randint(3, 8)
    g1 = small_graph(seed=seed % 100, n=n)
    g2 = small_graph(seed=seed % 100 + 50, n=rng.randint(3, 8))
    config = FSimConfig(variant=variant, label_function="indicator",
                        backend="numpy")
    session = IncrementalFSim(g1, g2, config)
    session.compute()
    next_id = 0
    for _ in range(steps):
        log = session.log1 if rng.random() < 0.7 else session.log2
        for _ in range(rng.randint(1, 4)):
            next_id = random_mutation(log, rng, next_id)
        warm = session.compute()
        clear_plan_caches()
        cold_numpy = fsim_matrix(g1, g2, config=config)
        assert warm.scores == cold_numpy.scores
        assert warm.iterations == cold_numpy.iterations
        clear_plan_caches()
        cold_python = fsim_matrix(
            g1, g2, config=config.with_options(backend="python")
        )
        assert warm.scores.keys() == cold_python.scores.keys()
        for pair, value in cold_python.scores.items():
            assert warm.scores[pair] == value
        assert warm.iterations == cold_python.iterations


# ----------------------------------------------------------------------
# warm mode
# ----------------------------------------------------------------------
class TestWarmMode:
    def test_warm_mode_within_epsilon_band(self):
        rng = random.Random(23)
        g = small_graph(seed=25, n=14)
        config = FSimConfig(variant=Variant.B, label_function="indicator",
                            backend="numpy")
        session = IncrementalFSim(g, g, config, mode="warm")
        session.compute()
        assert session.trajectory_bytes == 0  # no replay state
        for step in range(5):
            nodes = list(g.nodes())
            if rng.random() < 0.5 and g.num_edges:
                session.log1.remove_edge(*rng.choice(list(g.edges())))
            else:
                s, t = rng.sample(nodes, 2)
                session.log1.add_edge_if_absent(s, t)
            warm = session.compute()
            ref = cold_reference(g, g, config)
            assert warm.scores.keys() == ref.scores.keys()
            worst = max(
                abs(warm.scores[pair] - value)
                for pair, value in ref.scores.items()
            )
            assert worst < 0.05, step
            assert warm.iterations <= ref.iterations

    def test_replay_keeps_trajectory_state(self):
        g = small_graph(seed=27)
        session = IncrementalFSim(g, g, FSimConfig(backend="numpy"))
        session.compute()
        assert session.trajectory_bytes > 0

    def test_trajectory_memory_guard(self):
        g = small_graph(seed=29, n=12)
        session = IncrementalFSim(
            g, g, FSimConfig(backend="numpy"), max_trajectory_mb=1e-6
        )
        with pytest.raises(ConfigError):
            session.compute()


# ----------------------------------------------------------------------
# configuration guards
# ----------------------------------------------------------------------
class TestSessionGuards:
    def test_inexpressible_config_rejected(self):
        g = small_graph(seed=31)
        with pytest.raises(ConfigError):
            IncrementalFSim(
                g, g, FSimConfig(init_function=lambda u, v: 0.5)
            )

    def test_unknown_mode_rejected(self):
        g = small_graph(seed=33)
        with pytest.raises(ConfigError):
            IncrementalFSim(g, g, FSimConfig(), mode="tepid")

    def test_python_backend_rejected(self):
        """Sessions always run the vectorized engine; a config explicitly
        demanding the reference backend must fail loudly, not be
        silently overridden."""
        g = small_graph(seed=34)
        with pytest.raises(ConfigError):
            IncrementalFSim(g, g, FSimConfig(backend="python"))


# ----------------------------------------------------------------------
# edit scripts
# ----------------------------------------------------------------------
class TestEditScripts:
    def test_parse_and_apply_round_trip(self):
        script = parse_edit_script([
            "# comment",
            "",
            "add_node w L0",
            "g1 add_edge w u0",
            "g2 set_label u0 L1",
            "remove_edge w u0",
            "remove_node w",
        ])
        assert [(target, op.kind) for target, op in script] == [
            (1, "add_node"), (1, "add_edge"), (2, "set_label"),
            (1, "remove_edge"), (1, "remove_node"),
        ]
        g = LabeledDigraph()
        g.add_node("u0", "L0")
        log = DeltaLog(g)
        for target, op in script:
            if target == 1:
                apply_script_op(log, op)
        assert not g.has_node("w")
        assert g.has_node("u0")
        assert not log.drain().out_of_band

    def test_malformed_lines_raise(self):
        with pytest.raises(GraphError):
            parse_edit_script(["frobnicate a b"])
        with pytest.raises(GraphError):
            parse_edit_script(["add_edge onlyone"])


# ----------------------------------------------------------------------
# evolving-alignment app wiring
# ----------------------------------------------------------------------
class TestEvolvingAlignment:
    def test_incremental_session_matches_batch_aligner(self):
        from repro.apps.alignment.evolving import (
            EvolvingAlignmentSession,
            evolve_inplace,
        )

        base = small_graph(seed=35, n=16)
        session = EvolvingAlignmentSession(base)
        first = session.alignment()
        # the unevolved copy aligns every node to (at least) itself
        assert all(u in partners for u, partners in first.items())
        session.step(seed=1)
        # ground truth: compare against a cold aligner on the same graphs
        from repro.apps.alignment.aligners import FSimAligner

        clear_plan_caches()
        expected = FSimAligner(Variant.B).align(session.current, base)
        assert session.alignment() == expected
        assert 0.0 <= session.self_match_rate() <= 1.0

    def test_evolve_inplace_records_clean_delta(self):
        from repro.apps.alignment.evolving import evolve_inplace

        base = small_graph(seed=37, n=14)
        log = DeltaLog(base)
        mutations = evolve_inplace(log, seed=3)
        delta = log.drain()
        assert not delta.out_of_band
        assert len(delta.ops) >= mutations  # remove_node ops expand
