"""Tests for the exact chi-simulation fixpoint solver."""

import pytest

from repro.graph import LabeledDigraph, figure1_graphs, from_edges, tiny_pair
from repro.graph.examples import TABLE2_EXPECTED
from repro.graph.generators import random_graph, uniform_labels
from repro.simulation import Variant, maximal_simulation, simulates
from repro.simulation.base import stricter_or_equal
from repro.simulation.maximal import simulation_preorder_classes

ALL_VARIANTS = [Variant.S, Variant.DP, Variant.B, Variant.BJ]


class TestFigure1:
    """The running example must reproduce Table 2's check-mark pattern."""

    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_table2_pattern(self, variant, figure1):
        pattern, data = figure1
        relation = maximal_simulation(pattern, data, variant)
        for candidate, expected in TABLE2_EXPECTED[variant.value].items():
            assert (("u", candidate) in relation) == expected, (variant, candidate)

    def test_simulates_api(self, figure1):
        pattern, data = figure1
        assert simulates(pattern, "u", data, "v2", Variant.S)
        assert not simulates(pattern, "u", data, "v1", Variant.S)

    def test_hexagons_collapse_onto_one(self, figure1):
        pattern, data = figure1
        relation = maximal_simulation(pattern, data, Variant.S)
        # Example 1: both hexagons of P are simulated by v2's single hexagon.
        assert ("h1", "v2_h") in relation
        assert ("h2", "v2_h") in relation


class TestBasics:
    def test_label_mismatch_blocks(self):
        g1 = from_edges([], {"a": "X"})
        g2 = from_edges([], {"b": "Y"})
        assert not maximal_simulation(g1, g2, Variant.S)

    def test_isolated_same_label(self):
        g1 = from_edges([], {"a": "X"})
        g2 = from_edges([], {"b": "X"})
        for variant in ALL_VARIANTS:
            assert ("a", "b") in maximal_simulation(g1, g2, variant)

    def test_path_simulated_by_cycle(self):
        path, cycle = tiny_pair()
        relation = maximal_simulation(path, cycle, Variant.S)
        assert len(relation) == 6  # every path node by every cycle node

    def test_cycle_not_simulated_by_path(self):
        path, cycle = tiny_pair()
        relation = maximal_simulation(cycle, path, Variant.S)
        assert len(relation) == 0

    def test_self_simulation_is_reflexive(self, small_random_graph):
        g = small_random_graph
        for variant in ALL_VARIANTS:
            relation = maximal_simulation(g, g, variant)
            for node in g.nodes():
                assert (node, node) in relation, (variant, node)

    def test_in_neighbors_matter(self):
        # u has an in-neighbor, v does not: Ma et al. semantics reject.
        g1 = from_edges([("p", "u")], {"p": "P", "u": "U"})
        g2 = from_edges([], {"v": "U"})
        assert ("u", "v") not in maximal_simulation(g1, g2, Variant.S)

    def test_bisimulation_symmetric_on_self(self, small_random_graph):
        g = small_random_graph
        relation = maximal_simulation(g, g, Variant.B)
        for u, v in relation.pairs():
            assert (v, u) in relation


class TestVariantSemantics:
    def test_dp_requires_injectivity(self):
        # u has two same-label children; v has only one.
        g1 = from_edges(
            [("u", "c1"), ("u", "c2")], {"u": "U", "c1": "C", "c2": "C"}
        )
        g2 = from_edges([("v", "d")], {"v": "U", "d": "C"})
        assert ("u", "v") in maximal_simulation(g1, g2, Variant.S)
        assert ("u", "v") not in maximal_simulation(g1, g2, Variant.DP)

    def test_dp_allows_extra_targets(self):
        g1 = from_edges([("u", "c1")], {"u": "U", "c1": "C"})
        g2 = from_edges(
            [("v", "d1"), ("v", "d2")], {"v": "U", "d1": "C", "d2": "C"}
        )
        assert ("u", "v") in maximal_simulation(g1, g2, Variant.DP)
        # ... but bijective simulation rejects the size mismatch.
        assert ("u", "v") not in maximal_simulation(g1, g2, Variant.BJ)

    def test_b_requires_converse_coverage(self):
        g1 = from_edges([("u", "c1")], {"u": "U", "c1": "C"})
        g2 = from_edges(
            [("v", "d1"), ("v", "e1")], {"v": "U", "d1": "C", "e1": "E"}
        )
        # v's E-child is not covered by any u-child.
        assert ("u", "v") in maximal_simulation(g1, g2, Variant.S)
        assert ("u", "v") not in maximal_simulation(g1, g2, Variant.B)

    def test_b_converse_invariant(self, small_random_graph, medium_random_graph):
        relation = maximal_simulation(
            small_random_graph, medium_random_graph, Variant.B
        )
        inverse = maximal_simulation(
            medium_random_graph, small_random_graph, Variant.B
        )
        assert set(relation.pairs()) == {(v, u) for u, v in inverse.pairs()}

    def test_bj_converse_invariant(self, small_random_graph, medium_random_graph):
        relation = maximal_simulation(
            small_random_graph, medium_random_graph, Variant.BJ
        )
        inverse = maximal_simulation(
            medium_random_graph, small_random_graph, Variant.BJ
        )
        assert set(relation.pairs()) == {(v, u) for u, v in inverse.pairs()}


class TestStrictnessHierarchy:
    """Figure 3(b): bj => dp => s and bj => b => s."""

    @pytest.mark.parametrize(
        "stricter,looser",
        [
            (Variant.BJ, Variant.DP),
            (Variant.BJ, Variant.B),
            (Variant.BJ, Variant.S),
            (Variant.DP, Variant.S),
            (Variant.B, Variant.S),
        ],
    )
    def test_containment_on_random_graphs(self, stricter, looser):
        for seed in range(4):
            g1 = random_graph(10, 20, uniform_labels(10, 2, seed), seed=seed)
            g2 = random_graph(12, 26, uniform_labels(12, 2, seed + 50), seed=seed + 50)
            strict = set(maximal_simulation(g1, g2, stricter).pairs())
            loose = set(maximal_simulation(g1, g2, looser).pairs())
            assert strict <= loose, (stricter, looser, seed)

    def test_stricter_or_equal_table(self):
        assert stricter_or_equal(Variant.BJ, Variant.S)
        assert stricter_or_equal(Variant.DP, Variant.S)
        assert not stricter_or_equal(Variant.S, Variant.BJ)
        assert not stricter_or_equal(Variant.DP, Variant.B)
        assert stricter_or_equal(Variant.B, Variant.B)


class TestPreorderClasses:
    def test_cycle_nodes_all_equivalent(self):
        from repro.graph.generators import cycle_graph

        g = cycle_graph(5)
        classes = simulation_preorder_classes(g, Variant.B)
        assert len(set(classes.values())) == 1

    def test_distinct_labels_distinct_classes(self):
        g = from_edges([], {"a": "X", "b": "Y"})
        classes = simulation_preorder_classes(g, Variant.B)
        assert classes["a"] != classes["b"]


class TestRelationContainer:
    def test_inverse(self):
        from repro.simulation.base import SimulationRelation

        relation = SimulationRelation([("a", 1), ("b", 2)])
        assert (1, "a") in relation.inverse()
        assert len(relation) == 2

    def test_discard_and_domain(self):
        from repro.simulation.base import SimulationRelation

        relation = SimulationRelation([("a", 1), ("a", 2)])
        relation.discard("a", 1)
        assert relation.image("a") == frozenset({2})
        relation.discard("a", 2)
        assert relation.domain() == frozenset()
        assert not relation

    def test_unhashable(self):
        from repro.simulation.base import SimulationRelation

        with pytest.raises(TypeError):
            hash(SimulationRelation())
