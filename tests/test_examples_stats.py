"""Tests for the reconstructed paper examples and graph statistics."""

import pytest

from repro.core import fsim_matrix
from repro.core.engine import is_one
from repro.graph import (
    compute_stats,
    figure2_data_posters,
    figure2_query_poster,
)
from repro.graph.generators import path_graph
from repro.simulation import Variant, maximal_simulation


class TestFigure2Posters:
    """The motivating example: plagiarism detection via fractional scores."""

    def test_no_exact_simulation(self):
        query = figure2_query_poster()
        database = figure2_data_posters()
        relation = maximal_simulation(query, database, Variant.S)
        assert ("P", "P1") not in relation  # the paper's point

    def test_fractional_score_reveals_plagiarism(self):
        query = figure2_query_poster()
        database = figure2_data_posters()
        result = fsim_matrix(query, database, Variant.S, label_function="indicator")
        scores = {p: result.score("P", p) for p in ("P1", "P2", "P3")}
        # P1 differs only in font/style: clearly the best partial simulator.
        assert scores["P1"] > scores["P2"] > scores["P3"]
        assert not is_one(scores["P1"])


class TestStats:
    def test_table4_row_fields(self, medium_random_graph):
        stats = compute_stats(medium_random_graph)
        assert stats.num_nodes == 40
        assert stats.num_edges == 100
        assert stats.avg_degree == pytest.approx(2.5)
        assert stats.max_out_degree >= 1
        assert stats.max_in_degree >= 1
        assert stats.num_labels == len(medium_random_graph.labels())

    def test_empty_graph(self):
        from repro.graph import LabeledDigraph

        stats = compute_stats(LabeledDigraph())
        assert stats.num_nodes == 0
        assert stats.avg_degree == 0.0
        assert stats.max_out_degree == 0

    def test_as_row_renders(self):
        stats = compute_stats(path_graph(3))
        row = stats.as_row("path")
        assert "path" in row
        assert "|E|=2" in row
