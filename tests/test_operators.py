"""Tests for the mapping/normalizing operators (Table 3)."""

import math

import pytest

from repro.core.operators import (
    CROSS,
    mapping_pairs,
    mapping_size,
    neighbor_term,
    omega,
    term_upper_bound,
)
from repro.simulation import Variant


def const_weight(value):
    return lambda a, b: value


def weight_table(table):
    return lambda a, b: table.get((a, b), 0.0)


ALWAYS = lambda a, b: True  # noqa: E731
SAME_INITIAL = lambda a, b: str(a)[0] == str(b)[0]  # noqa: E731


class TestOmega:
    def test_table3_values(self):
        assert omega(Variant.S, 3, 5) == 3
        assert omega(Variant.DP, 3, 5) == 3
        assert omega(Variant.B, 3, 5) == 8
        assert omega(Variant.BJ, 3, 5) == pytest.approx(math.sqrt(15))
        assert omega(CROSS, 3, 5) == 15

    def test_max_normalizer(self):
        assert omega(Variant.BJ, 3, 5, normalizer="max") == 5
        assert omega(Variant.DP, 3, 5, normalizer="max") == 5


class TestEmptyConventions:
    """The conventions that keep simulation definiteness (P2) true."""

    @pytest.mark.parametrize("variant", [Variant.S, Variant.DP])
    def test_s_dp_vacuous(self, variant):
        assert neighbor_term(variant, (), ("y",), const_weight(1), ALWAYS) == 1.0
        assert neighbor_term(variant, (), (), const_weight(1), ALWAYS) == 1.0
        assert neighbor_term(variant, ("x",), (), const_weight(1), ALWAYS) == 0.0

    @pytest.mark.parametrize("variant", [Variant.B, Variant.BJ])
    def test_b_bj_both_or_nothing(self, variant):
        assert neighbor_term(variant, (), (), const_weight(1), ALWAYS) == 1.0
        assert neighbor_term(variant, (), ("y",), const_weight(1), ALWAYS) == 0.0
        assert neighbor_term(variant, ("x",), (), const_weight(1), ALWAYS) == 0.0

    def test_cross_empty_is_zero(self):
        assert neighbor_term(CROSS, (), (), const_weight(1), ALWAYS) == 0.0


class TestSimpleOperator:
    def test_per_source_argmax(self):
        table = {("x1", "y1"): 0.3, ("x1", "y2"): 0.8, ("x2", "y1"): 0.4}
        term = neighbor_term(
            Variant.S, ("x1", "x2"), ("y1", "y2"), weight_table(table), ALWAYS
        )
        assert term == pytest.approx((0.8 + 0.4) / 2)

    def test_infeasible_sources_contribute_zero(self):
        term = neighbor_term(
            Variant.S, ("x1", "x2"), ("x9",), const_weight(1.0), SAME_INITIAL
        )
        assert term == pytest.approx(1.0)  # only x-prefixed feasible; both map
        term = neighbor_term(
            Variant.S, ("x1", "z2"), ("x9",), const_weight(1.0), SAME_INITIAL
        )
        assert term == pytest.approx(0.5)  # z2 has no feasible target

    def test_score_one_when_all_match(self):
        term = neighbor_term(Variant.S, ("a", "b"), ("c",), const_weight(1.0), ALWAYS)
        assert term == 1.0


class TestBisimOperator:
    def test_both_directions(self):
        table = {("x1", "y1"): 0.5, ("x1", "y2"): 0.7}
        term = neighbor_term(
            Variant.B, ("x1",), ("y1", "y2"), weight_table(table), ALWAYS
        )
        # forward: x1->y2 (0.7); backward: y1->x1 (0.5), y2->x1 (0.7)
        assert term == pytest.approx((0.7 + 0.5 + 0.7) / 3)


class TestInjectiveOperators:
    def test_dp_injective_penalty(self):
        # two sources but a single target: only one can map.
        term = neighbor_term(
            Variant.DP, ("x1", "x2"), ("y1",), const_weight(1.0), ALWAYS
        )
        assert term == pytest.approx(0.5)

    def test_bj_geometric_normalizer(self):
        term = neighbor_term(
            Variant.BJ, ("x1", "x2"), ("y1",), const_weight(1.0), ALWAYS
        )
        assert term == pytest.approx(1.0 / math.sqrt(2))

    def test_exact_mode_fixes_greedy_trap(self):
        table = {("a", "x"): 1.0, ("a", "y"): 0.9, ("b", "x"): 0.9}
        greedy = neighbor_term(
            Variant.DP, ("a", "b"), ("x", "y"), weight_table(table), ALWAYS, "greedy"
        )
        exact = neighbor_term(
            Variant.DP, ("a", "b"), ("x", "y"), weight_table(table), ALWAYS, "exact"
        )
        assert greedy == pytest.approx(1.0 / 2)
        assert exact == pytest.approx(1.8 / 2)

    def test_capped_at_one(self):
        term = neighbor_term(
            Variant.BJ, ("x1", "x2"), ("y1", "y2", "y3", "y4"),
            const_weight(1.0), ALWAYS,
        )
        assert term <= 1.0


class TestMappingSize:
    def test_s_counts_feasible_sources(self):
        assert mapping_size(Variant.S, ("x1", "z1"), ("x2",), SAME_INITIAL) == 1

    def test_b_counts_both_sides(self):
        assert (
            mapping_size(Variant.B, ("x1",), ("x2", "x3"), SAME_INITIAL) == 3
        )

    def test_dp_uses_matching(self):
        # both sources feasible only with the single target -> matching 1
        assert mapping_size(Variant.DP, ("x1", "x2"), ("x9",), SAME_INITIAL) == 1

    def test_cross_counts_pairs(self):
        assert mapping_size(CROSS, ("x1", "x2"), ("x3", "z1"), SAME_INITIAL) == 2


class TestUpperBound:
    def test_matches_term_with_unit_weights(self):
        # With all weights at their maximum 1, term == |M| / Omega.
        sources, targets = ("x1", "x2"), ("x3", "z9")
        for variant in (Variant.S, Variant.DP, Variant.B, Variant.BJ):
            bound = term_upper_bound(variant, sources, targets, SAME_INITIAL)
            term = neighbor_term(
                variant, sources, targets, const_weight(1.0), SAME_INITIAL, "exact"
            )
            assert term <= bound + 1e-12, variant

    def test_empty_conventions_respected(self):
        assert term_upper_bound(Variant.S, (), ("y",), ALWAYS) == 1.0
        assert term_upper_bound(Variant.BJ, (), ("y",), ALWAYS) == 0.0


class TestMappingPairs:
    def test_s_pairs(self):
        table = {("x1", "y1"): 0.3, ("x1", "y2"): 0.8}
        pairs = mapping_pairs(
            Variant.S, ("x1",), ("y1", "y2"), weight_table(table), ALWAYS
        )
        assert pairs == [("x1", "y2")]

    def test_b_pairs_include_backward(self):
        table = {("x1", "y1"): 0.5}
        pairs = mapping_pairs(
            Variant.B, ("x1",), ("y1",), weight_table(table), ALWAYS
        )
        assert pairs == [("x1", "y1"), ("x1", "y1")]

    def test_injective_pairs_unique_targets(self):
        table = {(a, b): 1.0 for a in "ab" for b in "xy"}
        pairs = mapping_pairs(
            Variant.BJ, ("a", "b"), ("x", "y"), weight_table(table), ALWAYS
        )
        targets = [b for _, b in pairs]
        assert len(set(targets)) == len(targets) == 2

    def test_cross_pairs(self):
        pairs = mapping_pairs(CROSS, ("a",), ("x", "y"), const_weight(1.0), ALWAYS)
        assert set(pairs) == {("a", "x"), ("a", "y")}
