"""Tests for the second observability story: audit, SLO, flight, fleet.

Four subsystems, one contract:

- the **ShadowAuditor** proves bitwise parity on live traffic -- every
  sampled read re-executes on the reference configuration and must
  fingerprint identically, with concurrent mutations voided by the
  version watermark instead of reported as false divergences;
- the **SLOEngine** turns raw counters into a multi-window multi-burn
  alert lifecycle (pending needs two consecutive bad evaluations, a
  resolved alert increments ``resolved_total``);
- the **FlightRecorder** dumps an atomic, strictly-parseable NDJSON
  bundle the moment any of them complains;
- **federation** folds N instances' scrapes into one fleet view.

The E2E acceptance test at the bottom drives all four through a real
server: clean concurrent traffic audits 100% match, one injected
``corrupt-scores`` fault produces exactly one divergence whose flight
bundle carries the originating trace.
"""

import json
import math
import threading
import time

import pytest

from repro.core import FSimConfig
from repro.graph.generators import random_graph, uniform_labels
from repro.obs import federate, log as obs_log, metrics
from repro.obs.audit import (
    REFERENCE_OVERRIDES,
    ShadowAuditor,
    fingerprint_scores,
    fingerprint_topk,
)
from repro.obs.flight import (
    FlightRecorder,
    bundle_kinds,
    list_bundles,
    read_bundle,
)
from repro.obs.metrics import MetricsRegistry, parse_exposition
from repro.obs.slo import Objective, SLOEngine, default_objectives
from repro.service import (
    GraphStore,
    ServerThread,
    ServiceClient,
    WriteAheadLog,
)
from repro.service.wal import FaultInjector
from repro.simulation import Variant


def make_graph(num_nodes=14, num_edges=32, labels=3, seed=5):
    return random_graph(
        num_nodes, num_edges,
        uniform_labels(num_nodes, labels, seed=seed), seed=seed + 1,
    )


def numpy_config(**overrides):
    options = dict(variant=Variant.B, label_function="indicator",
                   backend="numpy")
    options.update(overrides)
    return FSimConfig(**options)


def wait_for(predicate, timeout=30.0, interval=0.05, message="condition"):
    deadline = time.time() + timeout
    while time.time() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {message}")


@pytest.fixture
def fresh_registry():
    prior = metrics.enabled()
    metrics.configure(enabled=True)
    metrics.REGISTRY.reset()
    yield metrics.REGISTRY
    metrics.REGISTRY.reset()
    metrics.configure(enabled=prior)


def audited_store(graphs=2, **auditor_kwargs):
    """A store with two registered graphs and a manual (unstarted)
    auditor tapped in."""
    store = GraphStore(default_config=numpy_config())
    for index in range(graphs):
        store.register(f"g{index + 1}", make_graph(seed=5 + index))
    auditor = ShadowAuditor(store, auditor_kwargs.pop("sampling", 1.0),
                            **auditor_kwargs)
    store.auditor = auditor
    return store, auditor


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------
class TestFingerprints:
    def test_scores_fingerprint_is_order_insensitive(self):
        scores = {("a", "x"): 0.25, ("b", "y"): 1.0 / 3.0}
        reordered = dict(reversed(list(scores.items())))
        assert fingerprint_scores(scores) == fingerprint_scores(reordered)

    def test_scores_fingerprint_sees_the_last_mantissa_bit(self):
        scores = {("a", "x"): 1.0 / 3.0}
        nudged = {("a", "x"): math.nextafter(1.0 / 3.0, math.inf)}
        assert fingerprint_scores(scores) != fingerprint_scores(nudged)

    def test_topk_fingerprint_sees_order_and_scores(self):
        from repro.core.topk import TopKResult

        result = TopKResult(query="q", partners=[("a", 0.9), ("b", 0.8)],
                            iterations=3, certified=True)
        swapped = TopKResult(query="q", partners=[("b", 0.8), ("a", 0.9)],
                             iterations=3, certified=True)
        assert fingerprint_topk([result]) == fingerprint_topk([result])
        assert fingerprint_topk([result]) != fingerprint_topk([swapped])


# ----------------------------------------------------------------------
# auditor mechanics (no server)
# ----------------------------------------------------------------------
class TestShadowAuditor:
    def test_sampling_bounds_are_validated(self):
        store = GraphStore(default_config=numpy_config())
        with pytest.raises(ValueError):
            ShadowAuditor(store, -0.1)
        with pytest.raises(ValueError):
            ShadowAuditor(store, 1.01)

    def test_sampling_zero_captures_nothing(self, fresh_registry):
        store, auditor = audited_store(sampling=0.0)
        store.fsim("g1", "g2")
        assert auditor.counts["captured"] == 0
        store.close()

    def test_full_queue_drops_and_counts(self, fresh_registry):
        # capacity=1 and no worker thread: the second capture must be
        # dropped without blocking the (serving) caller.
        store, auditor = audited_store(capacity=1)
        store.fsim("g1", "g2")
        store.topk("g1", "g2", [0], 3)
        assert auditor.counts["captured"] == 2
        assert auditor.counts["dropped"] == 1
        dropped = fresh_registry.get("repro_audit_dropped_total")
        assert dropped is not None and dropped.value == 1
        auditor.close()
        store.close()

    def test_version_moved_voids_the_audit(self, fresh_registry):
        from repro.streaming.delta import DeltaOp

        store, auditor = audited_store()
        store.fsim("g1", "g2")
        assert auditor.counts["captured"] == 1
        # Mutate g1 after capture but before execution: the watermark
        # check must void the audit, never report a false divergence.
        store.mutate("g1", [DeltaOp("add_node", "zz", "L0")])
        auditor.start()
        assert auditor.drain(timeout=30)
        assert auditor.counts["skipped_version_moved"] == 1
        assert auditor.counts["diverged"] == 0
        store.close()

    def test_match_and_forced_divergence(self, fresh_registry):
        store, auditor = audited_store()
        store.fsim("g1", "g2")
        auditor.start()
        assert auditor.drain(timeout=30)
        assert auditor.counts["match"] == 1

        auditor.fault = FaultInjector("corrupt-scores:1")
        events = []
        sink = lambda event, fields: events.append((event, dict(fields)))
        obs_log.add_sink(sink)
        try:
            store.topk("g1", "g2", [0, 1], 3)
            assert auditor.drain(timeout=30)
        finally:
            obs_log.remove_sink(sink)
        assert auditor.counts["diverged"] == 1
        diverged = [fields for event, fields in events
                    if event == "audit.diverged"]
        assert len(diverged) == 1
        assert diverged[0]["op"] == "topk"
        assert diverged[0]["live_fingerprint"] != \
            diverged[0]["reference_fingerprint"]
        stats = auditor.stats()
        assert stats["match_rate"] == 0.5
        assert stats["executed"] == 2
        store.close()

    def test_reference_config_is_the_independent_path(self):
        config = numpy_config(workers=4)
        reference = config.with_options(**REFERENCE_OVERRIDES)
        assert reference.backend == "python"
        assert reference.workers == 1
        # The scoring semantics must be untouched -- only the execution
        # strategy changes.
        assert reference.variant == config.variant
        assert reference.theta == config.theta


# ----------------------------------------------------------------------
# SLO engine (deterministic time)
# ----------------------------------------------------------------------
def ratio_objective(**overrides):
    options = dict(
        objective=0.9,
        bad=("err_total", None),
        totals=(("req_total", None),),
        fast_windows=(10.0, 20.0), slow_windows=(30.0, 60.0),
        fast_burn=2.0, slow_burn=1.0,
    )
    options.update(overrides)
    return Objective("avail", "ratio", **options)


class TestSLOEngine:
    def test_window_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            SLOEngine([], window_scale=0.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Objective("x", "weather", objective=0.9)
        with pytest.raises(ValueError):
            Objective("x", "ratio")  # needs objective=
        with pytest.raises(ValueError):
            Objective("x", "bound")  # needs bound=

    def test_default_objectives_cover_the_stack(self):
        names = {objective.name for objective in default_objectives()}
        assert names == {"availability", "latency_p99",
                         "replication_lag", "audit_match"}

    def test_ratio_lifecycle_pending_firing_resolved(self):
        registry = MetricsRegistry(enabled=True)
        engine = SLOEngine([ratio_objective()], registry=registry)
        req = registry.counter("req_total", "")
        err = registry.counter("err_total", "")

        assert engine.evaluate(now=0.0) == []  # one sample: burn 0
        req.inc(10)
        err.inc(10)  # 100% errors, budget 10% -> burn 10 >= 2
        transitions = engine.evaluate(now=1.0)
        assert [t["transition"] for t in transitions] == ["pending"]
        req.inc(10)
        err.inc(10)
        transitions = engine.evaluate(now=2.0)
        assert [t["transition"] for t in transitions] == ["firing"]
        assert engine.firing() == ["avail"]
        gauge = registry.get("repro_slo_burn_rate", slo="avail")
        assert gauge is not None and gauge.value >= 2.0

        # Clean traffic; old errors age out of every window.
        req.inc(1000)
        transitions = engine.evaluate(now=100.0)
        engine.evaluate(now=101.0)
        transitions += engine.evaluate(now=102.0)
        resolved = [t for t in transitions if t["transition"] == "resolved"]
        assert len(resolved) == 1
        report = engine.report()["objectives"]["avail"]
        assert report["state"] == "inactive"
        assert report["fired_total"] == 1
        assert report["resolved_total"] == 1
        assert engine.firing() == []

    def test_single_spike_never_pages(self):
        # pending -> firing requires the condition on two consecutive
        # evaluations; a one-tick blip goes pending -> inactive.
        registry = MetricsRegistry(enabled=True)
        engine = SLOEngine([ratio_objective()], registry=registry)
        req = registry.counter("req_total", "")
        err = registry.counter("err_total", "")
        engine.evaluate(now=0.0)
        req.inc(10)
        err.inc(10)
        assert [t["transition"] for t in engine.evaluate(now=1.0)] == \
            ["pending"]
        req.inc(1000)  # the blip is over
        transitions = engine.evaluate(now=2.0)
        assert [t["transition"] for t in transitions] == ["inactive"]
        assert engine.report()["objectives"]["avail"]["fired_total"] == 0

    def test_both_fast_windows_must_agree(self):
        # Errors only inside the short window (long window still
        # clean) must not satisfy the fast rule by itself; with the
        # slow windows also clean the alert stays inactive.
        registry = MetricsRegistry(enabled=True)
        objective = ratio_objective(fast_windows=(2.0, 100.0),
                                    slow_windows=(200.0, 400.0))
        engine = SLOEngine([objective], registry=registry)
        req = registry.counter("req_total", "")
        err = registry.counter("err_total", "")
        engine.evaluate(now=0.0)
        req.inc(100000)  # clean traffic lands inside the long window
        for tick in range(1, 50):
            engine.evaluate(now=float(tick))
        req.inc(10)
        err.inc(2)  # 20% of the *recent* traffic errored
        transitions = engine.evaluate(now=50.0)
        burns = engine.report()["objectives"]["avail"]["burns"]
        assert burns["fast_short"] >= objective.fast_burn
        assert burns["fast_long"] < objective.fast_burn
        assert transitions == []

    def test_bound_objective_tracks_a_gauge(self):
        registry = MetricsRegistry(enabled=True)
        objective = Objective(
            "lag", "bound", bound=10.0, metric="lag_records",
            fast_windows=(2.0, 4.0), slow_windows=(4.0, 8.0),
            fast_burn=1.0, slow_burn=1.0,
        )
        engine = SLOEngine([objective], registry=registry)
        assert engine.evaluate(now=0.0) == []  # gauge absent: no sample
        gauge = registry.gauge("lag_records", "")
        gauge.set(100.0)
        engine.evaluate(now=1.0)
        transitions = engine.evaluate(now=2.0)
        assert [t["transition"] for t in transitions] == ["pending"]
        transitions = engine.evaluate(now=3.0)
        assert [t["transition"] for t in transitions] == ["firing"]
        gauge.set(0.0)
        # at t=20 the 100s have aged out of retention entirely
        transitions = engine.evaluate(now=20.0)
        assert [t["transition"] for t in transitions] == ["resolved"]

    def test_latency_objective_counts_slow_fraction(self):
        registry = MetricsRegistry(enabled=True)
        objective = Objective(
            "lat", "latency", objective=0.5, threshold=0.1,
            metric="req_seconds",
            fast_windows=(10.0, 20.0), slow_windows=(30.0, 60.0),
            fast_burn=1.5, slow_burn=1.0,
        )
        engine = SLOEngine([objective], registry=registry)
        hist = registry.histogram("req_seconds", "")
        engine.evaluate(now=0.0)
        for _ in range(10):
            hist.observe(5.0)  # all above threshold: slow fraction 1.0
        engine.evaluate(now=1.0)
        burns = engine.report()["objectives"]["lat"]["burns"]
        assert burns["fast_short"] == pytest.approx(2.0)  # 1.0 / 0.5


# ----------------------------------------------------------------------
# flight recorder
# ----------------------------------------------------------------------
class TestFlightRecorder:
    def test_memory_only_mode_counts_but_writes_nothing(self):
        clock = [0.0]
        recorder = FlightRecorder(None, min_interval=5.0,
                                  time_source=lambda: clock[0])
        assert recorder.trigger("manual") is None
        clock[0] = 1.0
        assert recorder.trigger("manual") is None  # inside rate window
        clock[0] = 2.0
        recorder.trigger("manual", force=True)
        stats = recorder.stats()
        assert stats["triggered"] == 3
        assert stats["suppressed"] == 1
        assert stats["written"] == 0
        assert stats["bundles"] == 0

    def test_bundle_round_trip(self, tmp_path):
        recorder = FlightRecorder(
            tmp_path, instance="127.0.0.1:7464", min_interval=0.0,
            context_provider=lambda: {"role": "primary", "wal_seq": 41},
            trace_lookup=lambda trace_id: {"trace_id": trace_id,
                                           "spans": [{"name": "s"}]},
        )
        recorder.record_event("replica.connected", peer="10.0.0.2")
        recorder.snapshot_metrics(force=True)
        path = recorder.trigger(
            "audit_divergence",
            detail={"request": {"op": "fsim"}, "live_fingerprint": "aa",
                    "reference_fingerprint": "bb"},
            trace_id="t-123",
        )
        assert path is not None
        records = read_bundle(path)
        kinds = bundle_kinds(records)
        assert kinds["header"] == 1
        assert kinds["context"] == 1
        assert kinds["detail"] == 1
        assert kinds["metrics"] == 1
        assert kinds["metrics_snapshot"] == 1
        assert kinds["trace"] == 1
        assert kinds["event"] >= 1
        header = records[0]
        assert header["reason"] == "audit_divergence"
        assert header["trace_id"] == "t-123"
        assert header["instance"] == "127.0.0.1:7464"
        detail = next(r for r in records if r["kind"] == "detail")["detail"]
        assert detail["live_fingerprint"] != detail["reference_fingerprint"]
        context = next(r for r in records
                       if r["kind"] == "context")["context"]
        assert context["wal_seq"] == 41
        trace = next(r for r in records if r["kind"] == "trace")["trace"]
        assert trace["trace_id"] == "t-123"
        # no stray temp files: the dump is atomic
        assert list(tmp_path.glob("*.tmp")) == []
        rows = list_bundles(tmp_path)
        assert len(rows) == 1
        assert rows[0]["reason"] == "audit_divergence"
        assert rows[0]["trace_id"] == "t-123"
        assert rows[0]["bytes"] > 0

    def test_spool_prunes_to_max_bundles(self, tmp_path):
        clock = [1000.0]
        recorder = FlightRecorder(tmp_path, max_bundles=3, min_interval=0.0,
                                  time_source=lambda: clock[0])
        paths = []
        for index in range(5):
            clock[0] += 1.0
            paths.append(recorder.trigger("manual", force=True))
        remaining = sorted(p.name for p in tmp_path.glob("flight-*"))
        assert len(remaining) == 3
        # oldest two deleted, newest three kept
        expected = sorted(p.split("/")[-1] for p in paths[2:])
        assert remaining == expected

    def test_read_bundle_is_strict(self, tmp_path):
        bad = tmp_path / "flight-x.ndjson"
        bad.write_text('{"kind": "header"}\nnot json\n')
        with pytest.raises(ValueError, match="not JSON"):
            read_bundle(bad)
        bad.write_text('{"kind": "detail"}\n')
        with pytest.raises(ValueError, match="missing header"):
            read_bundle(bad)
        bad.write_text('{"no_kind": 1}\n')
        with pytest.raises(ValueError, match="'kind' tag"):
            read_bundle(bad)

    def test_event_ring_is_bounded(self):
        recorder = FlightRecorder(None, event_capacity=4)
        for index in range(10):
            recorder.record_event("e", index=index)
        stats = recorder.stats()
        assert stats["events_buffered"] == 4


# ----------------------------------------------------------------------
# federation
# ----------------------------------------------------------------------
def _exposition(counter_value, gauge_value, connected):
    registry = MetricsRegistry(enabled=True)
    registry.counter("repro_requests_total", "Requests.",
                     op="fsim").inc(counter_value)
    registry.gauge("repro_replica_lag_records", "Lag.").set(gauge_value)
    registry.gauge("repro_replica_connected", "Link.").set(connected)
    return registry.exposition()


class TestFederation:
    def test_relabel_stamps_every_sample(self):
        families = parse_exposition(_exposition(3, 1.0, 1.0))
        stamped = federate.relabel(families, "10.0.0.1:7464", "primary")
        for family in stamped.values():
            for _name, labels, _value in family["samples"]:
                assert labels["instance"] == "10.0.0.1:7464"
                assert labels["role"] == "primary"

    def test_aggregate_sums_counters_and_hints_gauges(self):
        scrapes = [
            {"instance": "a", "role": "primary", "ok": True,
             "exposition": _exposition(3, 0.0, 1.0)},
            {"instance": "b", "role": "replica", "ok": True,
             "exposition": _exposition(5, 40.0, 0.0)},
        ]
        merged = federate.merge_scrapes(scrapes)
        aggregated = merged["aggregated"]
        requests = aggregated["repro_requests_total"]["samples"]
        assert [value for _n, _l, value in requests] == [8.0]
        lag = aggregated["repro_replica_lag_records"]["samples"]
        assert [value for _n, _l, value in lag] == [40.0]  # max: worst
        connected = aggregated["repro_replica_connected"]["samples"]
        assert [value for _n, _l, value in connected] == [0.0]  # min
        assert merged["down"] == []
        # the merged exposition keeps per-instance series apart
        families = parse_exposition(merged["exposition"])
        instances = {
            labels.get("instance")
            for _n, labels, _v in
            families["repro_requests_total"]["samples"]
        }
        assert instances == {"a", "b"}

    def test_down_instances_are_reported_not_merged(self):
        scrapes = [
            {"instance": "a", "role": "primary", "ok": True,
             "exposition": _exposition(1, 0.0, 1.0)},
            {"instance": "b", "role": "replica", "ok": False,
             "error": "connection refused"},
        ]
        merged = federate.merge_scrapes(scrapes)
        assert merged["down"] == ["b"]
        samples = merged["aggregated"]["repro_requests_total"]["samples"]
        assert [value for _n, _l, value in samples] == [1.0]

    def test_instance_summary_reads_the_stats_report(self):
        stats = {
            "health": {"status": "degraded",
                       "reasons": ["SLO alert firing: replication_lag"]},
            "server": {"requests_served": 17},
            "replication": {"role": "replica",
                            "tail": {"lag_records": 12,
                                     "lag_seconds": 0.5}},
            "alerts": {"firing": ["replication_lag"],
                       "objectives": {"replication_lag": {
                           "burns": {"fast_short": 1.8}}}},
            "audit": {"match_rate": 1.0, "sampling": 0.01},
        }
        summary = federate.instance_summary(stats)
        assert summary["role"] == "replica"
        assert summary["health"] == "degraded"
        assert summary["lag_records"] == 12
        assert summary["burn_rates"] == {"replication_lag": 1.8}
        assert summary["firing"] == ["replication_lag"]
        assert summary["audit_match_rate"] == 1.0

    def test_cluster_table_renders_up_and_down_rows(self):
        rows = [
            {"instance": "a:1", "ok": True,
             "summary": {"role": "primary", "health": "ok",
                         "burn_rates": {"availability": 0.01},
                         "audit_match_rate": 0.9995,
                         "firing": []}},
            {"instance": "b:2", "ok": False, "error": "refused"},
        ]
        table = federate.cluster_table(rows)
        lines = table.splitlines()
        assert lines[0].split()[:3] == ["instance", "role", "health"]
        assert "primary" in lines[1] and "0.9995" in lines[1]
        assert "down" in lines[2] and "refused" in lines[2]


# ----------------------------------------------------------------------
# E2E: the audit acceptance drill
# ----------------------------------------------------------------------
class TestAuditEndToEnd:
    def test_clean_traffic_matches_and_divergence_is_forensic(
            self, tmp_path, fresh_registry):
        spool = tmp_path / "flight"
        store = GraphStore(default_config=numpy_config())
        store.register("g1", make_graph(seed=5))
        store.register("g2", make_graph(seed=9))
        store.register("g3", make_graph(seed=13))
        harness = ServerThread(store, audit_sampling=1.0,
                               audit_capacity=512, flight_dir=spool,
                               slo_interval=0.2)
        harness.start()
        client = ServiceClient(port=harness.port, tracing=True)
        mutator = ServiceClient(port=harness.port)
        stop = threading.Event()

        def mutate_loop():
            serial = 0
            while not stop.is_set():
                serial += 1
                mutator.mutate("g3", [("add_node", f"m{serial}", "L0")])
                time.sleep(0.002)

        thread = threading.Thread(target=mutate_loop, daemon=True)
        thread.start()
        try:
            # Concurrent queries on both backends while g3 churns.
            for round_index in range(6):
                params = (None if round_index % 2 == 0
                          else {"backend": "python"})
                client.fsim("g1", "g2", params=params)
                client.topk("g1", 0, k=3, graph2="g2", params=params)
                client.matrix(["g1", "g2"], "g3", params=params)
                client.fsim("g2", "g3", params=params)
        finally:
            stop.set()
            thread.join(timeout=10)
        auditor = harness.server.auditor
        assert auditor.drain(timeout=60)
        counts = dict(auditor.counts)
        # Every audit that scored, scored bitwise-identical; audits
        # torn by the concurrent mutator were voided, not failed.
        assert counts["diverged"] == 0
        assert counts["error"] == 0
        assert counts["match"] > 0
        assert counts["executed"] == counts["captured"] - counts["dropped"]

        # Now the drill: corrupt the next live fingerprint input.
        auditor.fault = FaultInjector("corrupt-scores:1")
        client.fsim("g1", "g2")
        origin_trace = client.last_trace_id
        assert origin_trace
        assert auditor.drain(timeout=60)
        wait_for(lambda: auditor.counts["diverged"] == 1,
                 message="divergence recorded")

        stats = client.stats()
        assert stats["audit"]["diverged"] == 1
        counter = fresh_registry.get("repro_audit_total", result="diverged")
        assert counter is not None and counter.value == 1

        # The flight bundle is the forensic record: header carries the
        # originating trace id, detail both fingerprints, trace the
        # merged client->server spans.
        rows = wait_for(
            lambda: [row for row in list_bundles(spool)
                     if row["reason"] == "audit_divergence"],
            message="divergence bundle spooled")
        assert rows[0]["trace_id"] == origin_trace
        records = read_bundle(rows[0]["path"])
        kinds = bundle_kinds(records)
        for kind in ("header", "context", "detail", "metrics", "trace"):
            assert kinds.get(kind, 0) >= 1, kinds
        detail = next(r for r in records if r["kind"] == "detail")["detail"]
        assert detail["request"]["op"] == "fsim"
        assert detail["request"]["graph1"] == "g1"
        assert detail["live_fingerprint"] != detail["reference_fingerprint"]
        trace = next(r for r in records if r["kind"] == "trace")["trace"]
        assert trace["trace_id"] == origin_trace
        span_names = {span["name"] for span in trace["spans"]}
        assert "server.dispatch" in span_names
        assert "store.fsim" in span_names

        # ... and the CLI can read it back.
        from repro import cli
        assert cli.main(["flight", "show", rows[0]["path"]]) == 0
        assert cli.main(["flight", "diff", rows[0]["path"]]) == 0

        client.close()
        mutator.close()
        harness.stop()

    def test_audit_off_taps_nothing(self, fresh_registry):
        store = GraphStore(default_config=numpy_config())
        store.register("g1", make_graph(seed=5))
        store.register("g2", make_graph(seed=9))
        harness = ServerThread(store)  # audit_sampling defaults to 0.0
        harness.start()
        assert harness.server.auditor is None
        with ServiceClient(port=harness.port) as client:
            client.fsim("g1", "g2")
            assert "audit" not in client.stats()
        assert fresh_registry.get("repro_audit_total",
                                  result="match") is None
        harness.stop()


# ----------------------------------------------------------------------
# E2E: server-integrated SLO lifecycle
# ----------------------------------------------------------------------
class TestServerSLOIntegration:
    def test_audit_match_slo_fires_degrades_health_then_resolves(
            self, tmp_path, fresh_registry):
        spool = tmp_path / "flight"
        store = GraphStore(default_config=numpy_config())
        store.register("g1", make_graph(seed=5))
        store.register("g2", make_graph(seed=9))
        harness = ServerThread(store, audit_sampling=1.0,
                               audit_capacity=512, flight_dir=spool,
                               slo_interval=0.02, slo_window_scale=2e-5)
        harness.start()
        client = ServiceClient(port=harness.port)
        auditor = harness.server.auditor
        engine = harness.server.slo

        # Every audit diverges until further notice.
        auditor.fault = FaultInjector(",".join(
            f"corrupt-scores:{n}" for n in range(1, 200)))
        deadline = time.time() + 30
        while time.time() < deadline and \
                "audit_match" not in engine.firing():
            client.fsim("g1", "g2")
            auditor.drain(timeout=30)
            time.sleep(0.02)
        assert "audit_match" in engine.firing()

        stats = client.stats()
        assert stats["health"]["status"] == "degraded"
        assert any("audit_match" in reason
                   for reason in stats["health"]["reasons"])
        alert = stats["alerts"]["objectives"]["audit_match"]
        assert alert["state"] == "firing"
        assert alert["fired_total"] >= 1
        wait_for(
            lambda: any(row["reason"] == "slo_alert"
                        for row in list_bundles(spool)),
            message="slo_alert flight bundle")

        # Recovery: stop corrupting, pump matching traffic until the
        # windows drain and the alert resolves.
        auditor.fault = None
        deadline = time.time() + 60
        while time.time() < deadline and \
                "audit_match" in engine.firing():
            client.fsim("g1", "g2")
            auditor.drain(timeout=30)
            time.sleep(0.05)
        assert "audit_match" not in engine.firing()
        report = engine.report()["objectives"]["audit_match"]
        assert report["resolved_total"] >= 1
        assert client.stats()["health"]["status"] == "ok"
        client.close()
        harness.stop()


# ----------------------------------------------------------------------
# E2E: fleet view over the wire
# ----------------------------------------------------------------------
class TestClusterView:
    def test_cluster_metrics_scrapes_advertised_followers(
            self, tmp_path, fresh_registry):
        store = GraphStore(default_config=numpy_config(),
                           wal=WriteAheadLog(tmp_path / "wal"))
        graph = make_graph(seed=5)
        source = {
            "nodes": [[node, graph.label(node)] for node in graph.nodes()],
            "edges": [list(edge) for edge in graph.edges()],
        }
        store.register("g1", graph, source=source)
        primary = ServerThread(store).start()
        replica = ServerThread(
            GraphStore(default_config=numpy_config()),
            replicate_from=f"127.0.0.1:{primary.port}",
        ).start()
        wait_for(lambda: replica.server.tail.connected,
                 message="replica connected")
        wait_for(lambda: primary.server.replication.advertised(),
                 message="follower advertised its address")

        with ServiceClient(port=primary.port) as client:
            client.fsim("g1", "g1")
            view = client.cluster_metrics()
        assert view["down"] == []
        roles = {row["instance"]: row["summary"]["role"]
                 for row in view["instances"] if row["ok"]}
        assert sorted(roles.values()) == ["primary", "replica"]
        # the merged exposition parses and keeps instances apart
        families = parse_exposition(view["exposition"])
        instances = {
            labels.get("instance")
            for family in families.values()
            for _n, labels, _v in family["samples"]
        }
        assert instances == set(roles)
        table = federate.cluster_table(view["instances"])
        assert "primary" in table and "replica" in table

        replica.stop()
        primary.stop()
