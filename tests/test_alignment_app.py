"""Tests for the graph-alignment case study (Table 9 machinery)."""

import pytest

from repro.apps.alignment import (
    EWSAligner,
    ExactBisimulationAligner,
    FinalAligner,
    FSimAligner,
    KBisimulationAligner,
    OlapAligner,
    alignment_f1,
    evaluate_aligners,
    evolve_graph,
    generate_bio_versions,
)
from repro.apps.alignment.evaluation import render_table9
from repro.simulation import Variant


@pytest.fixture(scope="module")
def versions():
    return generate_bio_versions(num_nodes=120, seed=3)


class TestEvolving:
    def test_three_versions(self, versions):
        assert len(versions) == 3
        for graph in versions:
            graph.validate()

    def test_versions_grow(self, versions):
        g1, g2, g3 = versions
        assert g2.num_nodes > g1.num_nodes  # birth > death, like the paper
        assert g3.num_nodes > g2.num_nodes

    def test_ids_preserved(self, versions):
        g1, g2, _ = versions
        shared = [u for u in g1.nodes() if g2.has_node(u)]
        assert len(shared) > 0.9 * g1.num_nodes
        for node in shared:
            assert g1.label(node) == g2.label(node)

    def test_evolution_deterministic(self, versions):
        g1 = versions[0]
        assert evolve_graph(g1, seed=7).same_structure(evolve_graph(g1, seed=7))

    def test_zero_churn_identity(self, versions):
        g1 = versions[0]
        frozen = evolve_graph(g1, seed=1, edge_churn=0, node_birth=0, node_death=0)
        assert frozen.same_structure(g1)


class TestF1Metric:
    def test_perfect_alignment(self, versions):
        g1, g2, _ = versions
        alignment = {u: [u] for u in g1.nodes() if g2.has_node(u)}
        assert alignment_f1(alignment, g1, g2) == pytest.approx(1.0)

    def test_empty_alignment(self, versions):
        g1, g2, _ = versions
        assert alignment_f1({}, g1, g2) == 0.0

    def test_ambiguity_penalised(self, versions):
        g1, g2, _ = versions
        shared = [u for u in g1.nodes() if g2.has_node(u)]
        two = {u: [u, "decoy"] for u in shared}
        one = {u: [u] for u in shared}
        assert alignment_f1(two, g1, g2) < alignment_f1(one, g1, g2)
        # P = 1/2, R = 1 -> F1 per node = 2/3
        assert alignment_f1(two, g1, g2) == pytest.approx(2 / 3)

    def test_wrong_alignment_scores_zero(self, versions):
        g1, g2, _ = versions
        shared = [u for u in g1.nodes() if g2.has_node(u)]
        wrong = {u: ["decoy"] for u in shared}
        assert alignment_f1(wrong, g1, g2) == 0.0


class TestAligners:
    def test_fsim_beats_baselines(self, versions):
        g1, g2, _ = versions
        fsim = alignment_f1(FSimAligner(Variant.B).align(g1, g2), g1, g2)
        kbisim = alignment_f1(KBisimulationAligner(2).align(g1, g2), g1, g2)
        olap = alignment_f1(OlapAligner().align(g1, g2), g1, g2)
        assert fsim > kbisim
        assert fsim > olap
        assert fsim > 0.6

    def test_exact_bisim_zero_under_drift(self, versions):
        g1, g2, _ = versions
        f1 = alignment_f1(ExactBisimulationAligner().align(g1, g2), g1, g2)
        assert f1 == pytest.approx(0.0, abs=0.05)

    def test_identity_alignment_on_self(self, versions):
        g1 = versions[0]
        for aligner in (FSimAligner(Variant.BJ), EWSAligner(), OlapAligner()):
            f1 = alignment_f1(aligner.align(g1, g1), g1, g1)
            assert f1 > 0.5, aligner.name

    def test_gsana_positional_alignment(self, versions):
        from repro.apps.alignment import GsanaAligner

        g1, g2, _ = versions
        alignment = GsanaAligner().align(g1, g2)
        f1 = alignment_f1(alignment, g1, g2)
        assert 0.0 < f1 < 1.0
        # candidates always share the query's label
        for u, candidates in alignment.items():
            for v in candidates:
                assert g1.label(u) == g2.label(v)

    def test_final_aligner_runs(self, versions):
        g1, g2, _ = versions
        f1 = alignment_f1(FinalAligner(iterations=4).align(g1, g2), g1, g2)
        assert 0.0 <= f1 <= 1.0

    def test_ews_injective(self, versions):
        g1, g2, _ = versions
        alignment = EWSAligner().align(g1, g2)
        matched = [vs[0] for vs in alignment.values() if vs]
        assert len(set(matched)) == len(matched)

    def test_kbisim_k_sensitivity(self, versions):
        g1, g2, _ = versions
        shallow = alignment_f1(KBisimulationAligner(2).align(g1, g2), g1, g2)
        deep = alignment_f1(KBisimulationAligner(4).align(g1, g2), g1, g2)
        # deeper signatures shatter under drift (paper: 2-bisim > 4-bisim)
        assert shallow >= deep

    def test_evaluate_and_render(self, versions):
        g1, g2, g3 = versions
        results = evaluate_aligners(
            [KBisimulationAligner(2), FSimAligner(Variant.B)],
            {"G1-G2": (g1, g2), "G1-G3": (g1, g3)},
        )
        table = render_table9(results)
        assert "G1-G2" in table
        assert "FSimb" in table
        assert len(results["G1-G2"]) == 2
