"""Smoke tests: every example script runs end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXPECTED_SNIPPETS = {
    "quickstart.py": "Figure 1 example",
    "poster_plagiarism.py": "flagged as the likely source",
    "pattern_matching_amazon.py": "scenario: exact",
    "venue_similarity.py": "duplicate records of WWW",
    "rdf_alignment.py": "Exact bisimulation scores 0%",
    "topk_search.py": "Early termination saved",
}


@pytest.mark.parametrize("script", sorted(EXPECTED_SNIPPETS))
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr
    assert EXPECTED_SNIPPETS[script] in completed.stdout


def test_all_examples_are_tested():
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXPECTED_SNIPPETS)
