"""Durability tests: WAL, crash recovery, fault injection, self-healing.

The durable store's contract extends the service's bitwise-parity bar
across process death: a store recovered from snapshots + WAL replay
answers every query with exactly the floats the pre-crash store would
have produced for the acknowledged mutation prefix, and a retried
mutation (same client request id) is applied exactly once no matter
where the crash landed.  Parity baselines rebuild graphs through the
same construction sequence (never ``graph.copy()``).

Crash tests come in two speeds: in-process (``FaultInjector.crash``
monkeypatched to raise :class:`SimulatedCrash`, a ``BaseException`` no
store code catches) and a real kill-and-recover suite that runs
``python -m repro serve`` in a subprocess, lets an injected fault
``os._exit(137)`` it mid-mutation-stream, restarts it and checks the
recovered scores over the wire.
"""

import asyncio
import json
import os
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.core import FSimConfig, fsim_matrix
from repro.exceptions import (
    ServiceConnectionError,
    ServiceError,
    ServiceRetryError,
    WalCorruptionError,
    WalError,
)
from repro.graph.generators import random_graph, uniform_labels
from repro.graph.io import load_graph, save_graph
from repro.service import (
    AsyncServiceClient,
    FaultInjector,
    GraphStore,
    ServerThread,
    ServiceClient,
    WriteAheadLog,
    read_wal,
    recover_store,
)
from repro.service.client import is_retryable, wire_scores
from repro.service.wal import (
    WAL_FILENAME,
    SimulatedCrash,
    repair_wal,
)
from repro.simulation import Variant
from repro.streaming.delta import DeltaOp

REPO_ROOT = Path(__file__).resolve().parents[1]


def make_graph(num_nodes=18, num_edges=45, labels=3, seed=5):
    """Deterministic graph in *canonical construction order*.

    The generator's interleaved construction is normalized to
    all-nodes-then-all-edges (the order ``nodes()``/``edges()`` iterate
    and the order every durable rebuild path uses -- inline WAL
    sources, v/e text files), so a replayed twin is adjacency-order
    identical and scores match bitwise.
    """
    from repro.graph.digraph import LabeledDigraph

    generated = random_graph(
        num_nodes, num_edges,
        uniform_labels(num_nodes, labels, seed=seed), seed=seed + 1,
    )
    graph = LabeledDigraph(generated.name)
    for node in generated.nodes():
        graph.add_node(node, generated.label(node))
    for source, target in generated.edges():
        graph.add_edge(source, target)
    return graph


def numpy_config(**overrides):
    options = dict(variant=Variant.B, label_function="indicator",
                   backend="numpy")
    options.update(overrides)
    return FSimConfig(**options)


def register_durable(store, name="g", graph=None):
    """Register with an inline source so WAL replay can rebuild the
    graph through the identical construction sequence (nodes and edges
    in insertion order -> bitwise-equal scores)."""
    if graph is None:
        graph = make_graph()
    source = {
        "nodes": [[node, graph.label(node)] for node in graph.nodes()],
        "edges": [list(edge) for edge in graph.edges()],
    }
    store.register(name, graph, source=source)
    return graph


def mutation_stream(count=8):
    """Deterministic always-valid mutation batches: each adds a fresh
    node and wires it to an existing one (fresh node -> no duplicate
    edges, no rejections -- crash points stay the interesting part)."""
    return [
        [DeltaOp("add_node", 1000 + index, index % 3),
         DeltaOp("add_edge", 1000 + index, index % 18)]
        for index in range(count)
    ]


def reference_scores(batches, config, graph_factory=make_graph):
    """Serial baseline: fresh graph, apply ``batches`` once, fsim.

    ``graph_factory`` must rebuild the graph through the same
    construction sequence as the store under test (text-file-loaded
    graphs have string node ids; generator graphs have ints)."""
    store = GraphStore(default_config=config)
    store.register("ref", graph_factory())
    for ops in batches:
        store.mutate("ref", ops)
    result = store.fsim("ref", "ref")
    scores = dict(result.scores)
    version = store.graph("ref").graph.version
    store.close()
    return scores, version


def raising_injector(spec):
    """A FaultInjector whose crash raises instead of killing pytest."""
    injector = FaultInjector(spec)

    def _crash():
        raise SimulatedCrash(f"injected crash ({spec})")

    injector.crash = _crash
    return injector


# ----------------------------------------------------------------------
# WAL format and scanning
# ----------------------------------------------------------------------
class TestWalFormat:
    def test_append_read_roundtrip(self, tmp_path):
        with WriteAheadLog(tmp_path, sync="always") as wal:
            s1 = wal.append({"kind": "register", "graph": "g",
                             "source": {"path": "x"}, "replace": False})
            s2 = wal.append({"kind": "mutate", "graph": "g",
                             "ops": [["add_edge", 1, 2]], "rid": "r1"})
        assert (s1, s2) == (1, 2)
        outcome = read_wal(tmp_path / WAL_FILENAME)
        assert not outcome.torn
        assert [r["seq"] for r in outcome.records] == [1, 2]
        assert outcome.records[1]["ops"] == [["add_edge", 1, 2]]
        assert outcome.records[1]["rid"] == "r1"

    def test_reopen_continues_sequence(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append({"kind": "unregister", "graph": "g"})
        with WriteAheadLog(tmp_path) as wal:
            assert wal.last_seq == 1
            assert wal.append({"kind": "unregister", "graph": "g"}) == 2

    def test_unknown_kind_and_unserializable_record(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            with pytest.raises(WalError):
                wal.append({"kind": "nonsense"})
            with pytest.raises(WalError):
                wal.append({"kind": "mutate", "graph": "g",
                            "ops": [["add_node", object(), 0]]})
            assert wal.last_seq == 0  # nothing consumed a seq

    def test_missing_and_empty_files_are_valid_empty_logs(self, tmp_path):
        assert read_wal(tmp_path / "absent.wal").records == []
        empty = tmp_path / WAL_FILENAME
        empty.write_bytes(b"")
        assert read_wal(empty) == ([], 0, 0)

    def test_torn_tail_detected_and_repaired(self, tmp_path):
        path = tmp_path / WAL_FILENAME
        with WriteAheadLog(tmp_path, sync="always") as wal:
            wal.append({"kind": "unregister", "graph": "a"})
            wal.append({"kind": "unregister", "graph": "b"})
        clean = path.read_bytes()
        path.write_bytes(clean + b'deadbeef {"kind":"mutate"')  # torn
        outcome = read_wal(path)
        assert outcome.torn
        assert len(outcome.records) == 2  # the tail is excluded, not fatal
        removed = repair_wal(path)
        assert removed > 0
        assert path.read_bytes() == clean
        assert not read_wal(path).torn

    def test_invalid_final_terminated_record_is_torn_not_corrupt(
            self, tmp_path):
        path = tmp_path / WAL_FILENAME
        with WriteAheadLog(tmp_path, sync="always") as wal:
            wal.append({"kind": "unregister", "graph": "a"})
        line = WriteAheadLog.encode({"kind": "unregister", "graph": "b",
                                     "seq": 2})
        with open(path, "ab") as handle:
            handle.write(FaultInjector.corrupt(line))  # bad CRC, has \n
        outcome = read_wal(path)
        assert outcome.torn and len(outcome.records) == 1

    def test_midfile_corruption_raises(self, tmp_path):
        path = tmp_path / WAL_FILENAME
        with WriteAheadLog(tmp_path, sync="always") as wal:
            wal.append({"kind": "unregister", "graph": "a"})
            wal.append({"kind": "unregister", "graph": "b"})
        data = path.read_bytes()
        first_newline = data.find(b"\n")
        mangled = FaultInjector.corrupt(data[:first_newline]) \
            + data[first_newline:]
        path.write_bytes(mangled)
        with pytest.raises(WalCorruptionError):
            read_wal(path)
        with pytest.raises(WalCorruptionError):
            recover_store(tmp_path, config=numpy_config())

    def test_rotate_is_atomic_under_crash(self, tmp_path):
        injector = raising_injector("crash-before-rotate-rename:1")
        wal = WriteAheadLog(tmp_path, sync="always",
                            fault_injector=injector)
        wal.append({"kind": "unregister", "graph": "a"})
        with pytest.raises(SimulatedCrash):
            wal.rotate({"kind": "checkpoint", "graphs": {}, "rids": {}})
        # The old log survives untouched (crash fell before the rename).
        outcome = read_wal(tmp_path / WAL_FILENAME)
        assert [r["kind"] for r in outcome.records] == ["unregister"]

    def test_rotate_replaces_log_with_checkpoint(self, tmp_path):
        with WriteAheadLog(tmp_path, sync="always") as wal:
            for _ in range(5):
                wal.append({"kind": "unregister", "graph": "a"})
            report = wal.rotate({"kind": "checkpoint",
                                 "graphs": {"a": 5}, "rids": {}})
            assert report["checkpoint_seq"] == 6
            wal.append({"kind": "unregister", "graph": "b"})
        records = read_wal(tmp_path / WAL_FILENAME).records
        assert [r["kind"] for r in records] == ["checkpoint", "unregister"]
        assert [r["seq"] for r in records] == [6, 7]


# ----------------------------------------------------------------------
# fault injection plumbing
# ----------------------------------------------------------------------
class TestFaultInjector:
    def test_spec_parsing_rejects_unknown_and_malformed(self):
        with pytest.raises(WalError):
            FaultInjector("no-such-fault:1")
        with pytest.raises(WalError):
            FaultInjector("disk-full")
        assert FaultInjector("disk-full:2,torn-append:3").faults == [
            ("disk-full", 2), ("torn-append", 3)]

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(FaultInjector.ENV_VAR, raising=False)
        assert FaultInjector.from_env() is None
        monkeypatch.setenv(FaultInjector.ENV_VAR, "disk-full:1")
        assert FaultInjector.from_env().faults == [("disk-full", 1)]

    def test_disk_full_fails_append_without_applying(self, tmp_path):
        store = GraphStore(
            default_config=numpy_config(),
            wal=WriteAheadLog(tmp_path, sync="always",
                              fault_injector=FaultInjector("disk-full:2")),
        )
        register_durable(store)
        version = store.graph("g").graph.version
        with pytest.raises(OSError):
            store.mutate("g", [DeltaOp("add_edge", 0, 2)], rid="r1")
        # WAL-before-apply: the failed append left the graph untouched,
        # and the rid was never consumed -- a retry applies cleanly.
        assert store.graph("g").graph.version == version
        outcome = store.mutate("g", [DeltaOp("add_edge", 0, 2)], rid="r1")
        assert "deduped" not in outcome
        store.close()


# ----------------------------------------------------------------------
# in-process crash / recover (SimulatedCrash)
# ----------------------------------------------------------------------
CRASH_POINTS = ["crash-before-append", "crash-after-append",
                "crash-after-fsync", "torn-append"]


class TestCrashRecovery:
    @pytest.mark.parametrize("fault", CRASH_POINTS)
    def test_kill_mid_stream_then_recover_bitwise(self, tmp_path, fault):
        config = numpy_config()
        batches = mutation_stream(count=8)
        crash_at = 5  # appends: 1 register + mutations; crash mid-stream
        store = GraphStore(
            default_config=config,
            wal=WriteAheadLog(
                tmp_path, sync="always",
                fault_injector=raising_injector(f"{fault}:{crash_at}"),
            ),
        )
        register_durable(store)
        acked = []
        pending = list(enumerate(batches))
        crashed = False
        for index, ops in list(pending):
            try:
                store.mutate("g", ops, rid=f"rid-{index}")
            except SimulatedCrash:
                crashed = True
                break
            acked.append(index)
            pending.pop(0)
        assert crashed, "the injected fault never fired"
        # Deliberately NOT store.close(): that would be a clean
        # shutdown.  The 'process' just died with its handles open.
        del store

        recovered, report = recover_store(tmp_path, config=config)
        if fault == "torn-append":
            assert report.truncated_bytes > 0
        # Every *acknowledged* mutation survived the crash...
        for index in acked:
            retry = recovered.mutate("g", batches[index],
                                     rid=f"rid-{index}")
            assert retry.get("deduped"), (
                f"acked mutation {index} was lost across the crash")
        # ...and the unacknowledged suffix retries to exactly-once
        # (deduped when the record hit the log pre-crash, fresh apply
        # otherwise -- either way applied exactly once).
        for index, ops in pending:
            recovered.mutate("g", ops, rid=f"rid-{index}")
        expected_scores, expected_version = reference_scores(
            batches, config)
        assert recovered.graph("g").graph.version == expected_version
        assert dict(recovered.fsim("g", "g").scores) == expected_scores
        recovered.close()

    def test_recovery_is_idempotent(self, tmp_path):
        config = numpy_config()
        store = GraphStore(default_config=config,
                           wal=WriteAheadLog(tmp_path, sync="always"))
        register_durable(store)
        for index, ops in enumerate(mutation_stream(count=5)):
            store.mutate("g", ops, rid=f"rid-{index}")
        expected = dict(store.fsim("g", "g").scores)
        store.close()
        for _ in range(3):  # recover repeatedly from the same directory
            recovered, _report = recover_store(tmp_path, config=config)
            assert dict(recovered.fsim("g", "g").scores) == expected
            recovered.close()


# ----------------------------------------------------------------------
# exactly-once request ids
# ----------------------------------------------------------------------
class TestRidDedup:
    def test_same_rid_applies_once(self, tmp_path):
        store = GraphStore(default_config=numpy_config(),
                           wal=WriteAheadLog(tmp_path))
        register_durable(store)
        first = store.mutate("g", [DeltaOp("add_edge", 0, 2)], rid="r")
        version = store.graph("g").graph.version
        second = store.mutate("g", [DeltaOp("add_edge", 0, 2)], rid="r")
        assert second.get("deduped") is True
        assert second["version"] == first["version"]
        assert store.graph("g").graph.version == version
        assert store.deduped_mutations == 1
        # The WAL holds exactly one record for the rid.
        store.close()
        records = read_wal(tmp_path / WAL_FILENAME).records
        assert sum(r.get("rid") == "r" for r in records) == 1

    def test_failed_outcome_is_remembered(self, tmp_path):
        store = GraphStore(default_config=numpy_config(),
                           wal=WriteAheadLog(tmp_path))
        register_durable(store)
        bad = [DeltaOp("remove_edge", "missing", "also-missing")]
        with pytest.raises(ServiceError):
            store.mutate("g", bad, rid="r")
        version = store.graph("g").graph.version
        with pytest.raises(ServiceError):
            store.mutate("g", bad, rid="r")  # replayed from the rid map
        assert store.graph("g").graph.version == version
        store.close()

    def test_dedup_survives_recovery_and_compaction(self, tmp_path):
        config = numpy_config()
        store = GraphStore(default_config=config,
                           wal=WriteAheadLog(tmp_path, sync="always"))
        register_durable(store)
        store.mutate("g", [DeltaOp("add_edge", 0, 2)], rid="pre-compact")
        store.compact()  # rid now lives in the checkpoint record only
        store.mutate("g", [DeltaOp("add_edge", 1, 3)], rid="post-compact")
        version = store.graph("g").graph.version
        store.close()
        recovered, report = recover_store(tmp_path, config=config)
        assert report.recovered_rids >= 1
        for rid, ops in (("pre-compact", [DeltaOp("add_edge", 0, 2)]),
                         ("post-compact", [DeltaOp("add_edge", 1, 3)])):
            assert recovered.mutate("g", ops, rid=rid).get("deduped")
        assert recovered.graph("g").graph.version == version
        recovered.close()


# ----------------------------------------------------------------------
# compaction
# ----------------------------------------------------------------------
class TestCompaction:
    def test_autocompaction_bounds_log_size(self, tmp_path):
        config = numpy_config()
        store = GraphStore(default_config=config,
                           wal=WriteAheadLog(tmp_path, sync="always"),
                           wal_compact_bytes=512)
        register_durable(store)
        for index in range(40):
            store.mutate("g", [DeltaOp("add_node", 2000 + index, 0)],
                         rid=f"rid-{index}")
        assert store.compactions >= 1
        assert (tmp_path / "g.snap").exists()
        assert store.wal.size_bytes() < 40 * 64  # bounded, not 40 records
        expected = dict(store.fsim("g", "g").scores)
        version = store.graph("g").graph.version
        store.close()
        recovered, report = recover_store(tmp_path, config=config)
        assert dict(recovered.fsim("g", "g").scores) == expected
        assert recovered.graph("g").graph.version == version
        recovered.close()

    def test_compaction_snapshot_is_opportunistic(self, tmp_path):
        """A mutation-only graph compacts without computing fsim."""
        store = GraphStore(default_config=numpy_config(),
                           wal=WriteAheadLog(tmp_path))
        register_durable(store)
        store.mutate("g", [DeltaOp("add_edge", 0, 2)])
        store.compact()
        stats = store.stats()
        assert stats["graphs"]["g"]["wal_seq"] >= 2
        # No pair state was materialized just to snapshot.
        assert stats["pairs"] == {}
        store.close()

    def test_unregistered_graph_snapshot_removed(self, tmp_path):
        store = GraphStore(default_config=numpy_config(),
                          wal=WriteAheadLog(tmp_path))
        register_durable(store, "a")
        register_durable(store, "b", make_graph(seed=9))
        store.compact()
        assert (tmp_path / "b.snap").exists()
        store.unregister("b")
        store.compact()
        assert not (tmp_path / "b.snap").exists()
        recovered, _ = recover_store(tmp_path, config=numpy_config())
        assert recovered.graph_names() == ["a"]
        recovered.close()
        store.close()


# ----------------------------------------------------------------------
# snapshot + WAL edge cases
# ----------------------------------------------------------------------
class TestSnapshotWalEdgeCases:
    def test_stale_snapshot_with_newer_wal_suffix(self, tmp_path):
        config = numpy_config()
        store = GraphStore(default_config=config,
                           wal=WriteAheadLog(tmp_path, sync="always"))
        register_durable(store)
        store.mutate("g", [DeltaOp("add_edge", 0, 2)])
        store.compact()  # snapshot at this watermark
        suffix = [[DeltaOp("add_node", 3000, 1)],
                  [DeltaOp("add_edge", 3000, 4)]]
        for ops in suffix:
            store.mutate("g", ops)  # newer than the snapshot
        expected = dict(store.fsim("g", "g").scores)
        version = store.graph("g").graph.version
        store.close()
        recovered, report = recover_store(tmp_path, config=config)
        assert report.snapshots_warm + report.snapshots_cold == 1
        assert report.replayed_mutations == len(suffix)
        assert recovered.graph("g").graph.version == version
        assert dict(recovered.fsim("g", "g").scores) == expected
        recovered.close()

    def test_wal_without_snapshot(self, tmp_path):
        config = numpy_config()
        store = GraphStore(default_config=config,
                           wal=WriteAheadLog(tmp_path, sync="always"))
        nodes = [[i, i % 3] for i in range(8)]
        edges = [[i, (i + 1) % 8] for i in range(8)]
        from repro.graph.digraph import LabeledDigraph

        graph = LabeledDigraph("g")
        for node, label in nodes:
            graph.add_node(node, label)
        for a, b in edges:
            graph.add_edge(a, b)
        store.register("g", graph,
                       source={"nodes": nodes, "edges": edges})
        store.mutate("g", [DeltaOp("add_edge", 0, 4)])
        expected = dict(store.fsim("g", "g").scores)
        store.close()
        assert not list(tmp_path.glob("*.snap"))
        recovered, report = recover_store(tmp_path, config=config)
        assert report.replayed_registers == 1
        assert dict(recovered.fsim("g", "g").scores) == expected
        recovered.close()

    def test_empty_wal_directory(self, tmp_path):
        recovered, report = recover_store(tmp_path, config=numpy_config())
        assert recovered.graph_names() == []
        assert report.records_read == 0
        # The attached log is live: durability starts immediately.
        register_durable(recovered)
        recovered.mutate("g", [DeltaOp("add_edge", 0, 2)])
        recovered.close()
        again, report2 = recover_store(tmp_path, config=numpy_config())
        assert again.graph_names() == ["g"]
        assert report2.replayed_mutations == 1
        again.close()

    def test_duplicate_sequence_numbers_skipped(self, tmp_path):
        path = tmp_path / WAL_FILENAME
        nodes = [[i, 0] for i in range(4)]
        lines = [
            WriteAheadLog.encode({"kind": "register", "graph": "g",
                                  "source": {"nodes": nodes, "edges": []},
                                  "replace": False, "seq": 1}),
            WriteAheadLog.encode({"kind": "mutate", "graph": "g",
                                  "ops": [["add_edge", 0, 1]],
                                  "rid": None, "seq": 2}),
            # a duplicated seq 2 (e.g. a replayed shipping artifact)
            WriteAheadLog.encode({"kind": "mutate", "graph": "g",
                                  "ops": [["add_edge", 0, 1]],
                                  "rid": None, "seq": 2}),
            WriteAheadLog.encode({"kind": "mutate", "graph": "g",
                                  "ops": [["add_edge", 1, 2]],
                                  "rid": None, "seq": 3}),
        ]
        path.write_bytes(b"".join(lines))
        recovered, report = recover_store(tmp_path, config=numpy_config())
        assert report.skipped_duplicates == 1
        assert report.replayed_mutations == 2
        graph = recovered.graph("g").graph
        assert graph.num_edges == 2  # the duplicate did not double-apply
        recovered.close()

    def test_mutations_for_unknown_graph_are_skipped(self, tmp_path):
        path = tmp_path / WAL_FILENAME
        # A mutate record for a graph that was registered programmatically
        # (source=None -> never logged): replay cannot rebuild it.
        path.write_bytes(WriteAheadLog.encode(
            {"kind": "mutate", "graph": "ghost",
             "ops": [["add_edge", 0, 1]], "rid": None, "seq": 1}))
        recovered, report = recover_store(tmp_path, config=numpy_config())
        assert report.skipped_unknown_graph == 1
        assert recovered.graph_names() == []
        recovered.close()


# ----------------------------------------------------------------------
# server integration (in-process)
# ----------------------------------------------------------------------
class TestServerDurability:
    def test_wire_mutations_are_durable_and_deduped(self, tmp_path):
        config = numpy_config()
        store = GraphStore(default_config=config,
                           wal=WriteAheadLog(tmp_path, sync="batch"))
        graph_path = tmp_path / "g.txt"
        save_graph(make_graph(), graph_path)
        with ServerThread(store) as harness:
            with ServiceClient(port=harness.port, timeout=30.0) as client:
                client.register("g", path=str(graph_path))
                # Text-loaded graphs have string node ids.
                first = client.mutate("g", [("add_edge", "0", "2")],
                                      rid="w1")
                again = client.mutate("g", [("add_edge", "0", "2")],
                                      rid="w1")
                assert again.get("deduped") is True
                assert again["version"] == first["version"]
                stats = client.stats()
                assert stats["wal"]["last_seq"] >= 2
                assert stats["wal"]["deduped_mutations"] == 1
                expected = wire_scores(client.fsim("g", "g"))
        recovered, report = recover_store(tmp_path, config=config)
        assert report.replayed_registers == 1
        assert dict(recovered.fsim("g", "g").scores) == expected
        assert recovered.mutate("g", [DeltaOp("add_edge", "0", "2")],
                                rid="w1").get("deduped")
        recovered.close()

    def test_server_compacts_in_background(self, tmp_path):
        config = numpy_config()
        store = GraphStore(default_config=config,
                           wal=WriteAheadLog(tmp_path, sync="batch"),
                           wal_compact_bytes=256)
        with ServerThread(store, compact_interval=0.05) as harness:
            assert store.wal_autocompact is False  # server owns compaction
            with ServiceClient(port=harness.port, timeout=30.0) as client:
                client.register("g", nodes=[[i, 0] for i in range(6)],
                                edges=[[i, (i + 1) % 6] for i in range(6)])
                for index in range(30):
                    client.mutate("g", [("add_node", 5000 + index, 0)])
                deadline = time.time() + 5.0
                while store.compactions == 0 and time.time() < deadline:
                    time.sleep(0.02)
        assert store.compactions >= 1
        assert (tmp_path / "g.snap").exists()
        recovered, _report = recover_store(tmp_path, config=config)
        assert recovered.graph("g").graph.num_nodes == 36
        recovered.close()

    def test_drain_timeout_configurable_and_abort_typed(self):
        from repro.service import FSimServer, MicroBatchScheduler

        server = FSimServer(drain_timeout=1.5)
        assert server.drain_timeout == 1.5

        async def _exercise_abort():
            scheduler = MicroBatchScheduler(GraphStore(), window=60.0)
            task = asyncio.ensure_future(
                scheduler.submit("fsim", {"graph1": "g", "graph2": "g",
                                          "params": None}))
            await asyncio.sleep(0.05)  # queued, window not yet elapsed
            aborted = scheduler.abort_pending("shutting down")
            assert aborted == 1
            with pytest.raises(ServiceError, match="shutting down"):
                await task

        asyncio.run(_exercise_abort())


# ----------------------------------------------------------------------
# client robustness
# ----------------------------------------------------------------------
class TestClientTimeouts:
    def test_unresponsive_server_raises_typed_error_fast(self):
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]
        try:
            client = ServiceClient(port=port, timeout=0.3)
            start = time.time()
            with pytest.raises(ServiceConnectionError):
                client.ping()  # accepted but never answered
            assert time.time() - start < 5.0
            client.close()
        finally:
            listener.close()

    def test_connect_refused_is_typed(self):
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()  # nothing listens here now
        with pytest.raises(ServiceConnectionError):
            ServiceClient(port=port, timeout=0.5)

    def test_server_close_mid_session_is_typed(self):
        store = GraphStore(default_config=numpy_config())
        harness = ServerThread(store).start()
        client = ServiceClient(port=harness.port, timeout=5.0)
        assert client.ping() == {"pong": True}
        harness.stop()
        with pytest.raises(ServiceConnectionError):
            client.ping()
        client.close()

    def test_retryable_classification(self):
        assert is_retryable(ServiceConnectionError("x"))
        from repro.exceptions import ServiceOverloadedError

        assert is_retryable(ServiceOverloadedError("x"))
        assert not is_retryable(ServiceError("bad request"))
        assert not is_retryable(ServiceRetryError("exhausted"))


class TestSelfHealingClient:
    @staticmethod
    def _free_port():
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()
        return port

    def test_reconnects_across_server_restart(self, tmp_path):
        config = numpy_config()
        port = self._free_port()
        store_a = GraphStore(default_config=config,
                             wal=WriteAheadLog(tmp_path, sync="always"))
        harness_a = ServerThread(store_a, port=port).start()

        async def _phase_one(client):
            await client.register(
                "g", nodes=[[i, 0] for i in range(6)],
                edges=[[i, (i + 1) % 6] for i in range(6)])
            return await client.mutate("g", [("add_edge", 1, 4)])

        async def _phase_two(client):
            # Resent mutation (explicit rid reuse) must dedup against
            # the recovered store; a fresh query must succeed after the
            # client silently reconnects.
            outcome = await client.mutate("g", [("add_edge", 0, 3)],
                                          rid="healed")
            result = await client.fsim("g", "g")
            return outcome, result

        async def _run():
            client = AsyncServiceClient(port=port, timeout=10.0,
                                        max_retries=8, backoff=0.05)
            await _phase_one(client)
            first = await client.mutate("g", [("add_edge", 0, 3)],
                                        rid="healed")
            return client, first

        loop = asyncio.new_event_loop()
        try:
            client, first = loop.run_until_complete(_run())
            harness_a.stop()  # crash substitute: connection drops

            # While the server is down, the retry budget exhausts into
            # the terminal typed error.
            impatient = AsyncServiceClient(port=port, timeout=0.5,
                                           max_retries=1, backoff=0.01)
            with pytest.raises(ServiceRetryError):
                loop.run_until_complete(impatient.request("ping"))
            loop.run_until_complete(impatient.close())

            recovered, _report = recover_store(tmp_path, config=config)
            harness_b = ServerThread(recovered, port=port).start()
            try:
                outcome, result = loop.run_until_complete(
                    _phase_two(client))
                assert outcome.get("deduped") is True
                assert outcome["version"] == first["version"]
                assert client.stats["reconnects"] >= 2
                assert result["converged"]
            finally:
                loop.run_until_complete(client.close())
                harness_b.stop()
        finally:
            loop.close()


# ----------------------------------------------------------------------
# kill -9 a real server, recover, verify over the wire
# ----------------------------------------------------------------------
class TestKillAndRecover:
    @staticmethod
    def _spawn_server(tmp_path, graph_path, fault=None, sync="always"):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env.pop(FaultInjector.ENV_VAR, None)
        if fault:
            env[FaultInjector.ENV_VAR] = fault
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--graph", f"g={graph_path}",
             "--wal-dir", str(tmp_path / "wal"),
             "--wal-sync", sync,
             "--port", "0", "--window", "0.001",
             "--variant", "b", "--label-function", "indicator",
             "--backend", "numpy"],
            env=env, cwd=str(REPO_ROOT),
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        port = None
        deadline = time.time() + 60.0
        while time.time() < deadline:
            line = process.stdout.readline()
            if not line:
                break
            if line.startswith("# ready on "):
                port = int(line.rsplit(":", 1)[1])
                break
        if port is None:
            process.kill()
            raise AssertionError("server never printed its ready line")
        return process, port

    @staticmethod
    def _reap(process):
        """Collect the server's exit code; never hang the suite on a
        wedged subprocess (kill it and fail visibly instead)."""
        process.stdout.close()
        try:
            return process.wait(timeout=60)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(timeout=10)
            raise AssertionError("server subprocess failed to exit")

    @pytest.mark.parametrize("fault", ["crash-after-append:4",
                                       "torn-append:4"])
    def test_sigkill_mid_stream_recovers_bitwise(self, tmp_path, fault):
        config = numpy_config()
        graph_path = tmp_path / "g.txt"
        save_graph(make_graph(), graph_path)
        batches = [[("add_node", 4000 + i, i % 3)] for i in range(6)]

        process, port = self._spawn_server(tmp_path, graph_path,
                                           fault=fault)
        acked, unacked = [], []
        try:
            client = ServiceClient(port=port, timeout=15.0)
            for index, ops in enumerate(batches):
                try:
                    client.mutate("g", ops, rid=f"rid-{index}")
                    acked.append(index)
                except ServiceConnectionError:
                    unacked.append(index)
                    break
            client.close()
        finally:
            exit_code = self._reap(process)
        assert exit_code == 137, "the injected fault should have killed it"
        assert unacked, "the crash should interrupt the stream"
        unacked.extend(range(unacked[-1] + 1, len(batches)))

        # Restart over the same WAL directory, no fault this time.
        process, port = self._spawn_server(tmp_path, graph_path)
        try:
            client = ServiceClient(port=port, timeout=15.0)
            # A well-behaved client resends everything unacknowledged
            # with the original rids (self-healing behavior, spelled
            # out): acked ones must dedup, unacked apply exactly once.
            for index in acked:
                assert client.mutate("g", batches[index],
                                     rid=f"rid-{index}").get("deduped")
            for index in unacked:
                client.mutate("g", batches[index], rid=f"rid-{index}")
            observed = wire_scores(client.fsim("g", "g"))
            version = client.stats()["graphs"]["g"]["version"]
            client.shutdown()
            client.close()
        finally:
            assert self._reap(process) == 0

        ops_batches = [[DeltaOp(*op) for op in batch]
                       for batch in batches]
        expected_scores, expected_version = reference_scores(
            ops_batches, config,
            graph_factory=lambda: load_graph(graph_path, name="g"))
        assert version == expected_version
        assert observed == expected_scores

    def test_clean_restart_resumes_from_shutdown_compaction(self, tmp_path):
        graph_path = tmp_path / "g.txt"
        save_graph(make_graph(), graph_path)
        process, port = self._spawn_server(tmp_path, graph_path)
        try:
            client = ServiceClient(port=port, timeout=15.0)
            # Text-loaded graphs have string node ids.
            client.mutate("g", [("add_edge", "0", "2")], rid="only")
            baseline = wire_scores(client.fsim("g", "g"))
            client.shutdown()
            client.close()
        finally:
            assert self._reap(process) == 0
        # The clean shutdown compacted: snapshot exists, log is short.
        assert (tmp_path / "wal" / "g.snap").exists()
        process, port = self._spawn_server(tmp_path, graph_path)
        try:
            client = ServiceClient(port=port, timeout=15.0)
            assert client.mutate("g", [("add_edge", "0", "2")],
                                 rid="only").get("deduped")
            assert wire_scores(client.fsim("g", "g")) == baseline
            client.shutdown()
            client.close()
        finally:
            assert self._reap(process) == 0


# ----------------------------------------------------------------------
# offline recovery CLI
# ----------------------------------------------------------------------
class TestRecoverCommand:
    def test_prints_fingerprint_and_counts(self, tmp_path, capsys):
        from repro.cli import main
        from repro.service.snapshot import graph_fingerprint

        config = numpy_config()
        store = GraphStore(default_config=config,
                           wal=WriteAheadLog(tmp_path, sync="always"))
        register_durable(store)
        store.mutate("g", [DeltaOp("add_edge", 0, 2)])
        expected = graph_fingerprint(store.graph("g").graph, config)
        store.close()

        code = main(["recover", "--wal-dir", str(tmp_path),
                     "--variant", "b", "--label-function", "indicator",
                     "--backend", "numpy", "--strict-config"])
        captured = capsys.readouterr().out
        assert code == 0
        assert f"fingerprint={expected}" in captured
        assert "1 mutation(s) replayed" in captured

    def test_offline_recovery_does_not_touch_disk(self, tmp_path):
        store = GraphStore(default_config=numpy_config(),
                           wal=WriteAheadLog(tmp_path, sync="always"))
        register_durable(store)
        store.close()
        wal_path = tmp_path / WAL_FILENAME
        before = wal_path.read_bytes()
        # Simulate a torn tail; attach=False must not repair it.
        wal_path.write_bytes(before + b"torn")
        recover_store(tmp_path, config=numpy_config(), attach=False)
        assert wal_path.read_bytes() == before + b"torn"
