"""Tests for the parallel runner and the convenience API."""

import pytest

from repro.core import FSimConfig, FSimEngine, fsim, fsim_matrix, fsim_single_graph
from repro.simulation import Variant


class TestParallel:
    def test_parallel_matches_serial(self, medium_random_graph):
        g = medium_random_graph
        cfg = FSimConfig(variant=Variant.S, label_function="indicator")
        serial = FSimEngine(g, g, cfg).run(workers=1)
        parallel = FSimEngine(g, g, cfg).run(workers=3)
        assert serial.scores.keys() == parallel.scores.keys()
        for pair, value in serial.scores.items():
            assert parallel.scores[pair] == pytest.approx(value, abs=1e-12)
        assert parallel.iterations == serial.iterations
        assert parallel.converged == serial.converged

    def test_parallel_with_pruning(self, medium_random_graph):
        g = medium_random_graph
        cfg = FSimConfig(
            variant=Variant.BJ,
            label_function="indicator",
            theta=1.0,
            use_upper_bound=True,
        )
        serial = FSimEngine(g, g, cfg).run(workers=1)
        parallel = FSimEngine(g, g, cfg).run(workers=2)
        for pair, value in serial.scores.items():
            assert parallel.scores[pair] == pytest.approx(value, abs=1e-12)

    def test_parallel_pinned_pairs(self, small_random_graph):
        g = small_random_graph
        node = g.nodes()[0]
        cfg = FSimConfig(
            variant=Variant.S,
            label_function="indicator",
            pinned_pairs={(node, node): 1.0},
        )
        result = FSimEngine(g, g, cfg).run(workers=2)
        assert result.scores[(node, node)] == 1.0


class TestApi:
    def test_fsim_matrix_overrides(self, small_random_graph):
        g = small_random_graph
        result = fsim_matrix(g, g, "b", theta=1.0, label_function="indicator")
        assert result.config.variant is Variant.B
        assert result.config.theta == 1.0

    def test_fsim_single_pair(self, figure1):
        pattern, data = figure1
        value = fsim(pattern, "u", data, "v4", "bj", label_function="indicator")
        assert value == pytest.approx(1.0)

    def test_fsim_single_graph(self, small_random_graph):
        g = small_random_graph
        result = fsim_single_graph(g, "b", label_function="indicator")
        for node in g.nodes():
            assert result.score(node, node) == pytest.approx(1.0)

    def test_explicit_config_wins(self, small_random_graph):
        g = small_random_graph
        cfg = FSimConfig(variant=Variant.DP, theta=1.0)
        result = fsim_matrix(g, g, "s", config=cfg)
        assert result.config.variant is Variant.DP
