"""Failure-injection and edge-case tests across the library."""

import pytest

from repro.core import FSimConfig, FSimEngine, fsim_matrix
from repro.exceptions import ConfigError, GraphError, ReproError
from repro.graph import LabeledDigraph, from_edges, load_graph
from repro.graph.generators import random_graph, uniform_labels
from repro.simulation import Variant, maximal_simulation


class TestEmptyAndDegenerateGraphs:
    def test_fsim_on_empty_graphs(self):
        empty = LabeledDigraph()
        result = fsim_matrix(empty, empty, Variant.S)
        assert result.scores == {}
        assert result.converged

    def test_fsim_single_isolated_node(self):
        g = from_edges([], {"a": "X"})
        result = fsim_matrix(g, g, Variant.BJ, label_function="indicator")
        assert result.score("a", "a") == pytest.approx(1.0)

    def test_maximal_simulation_empty(self):
        empty = LabeledDigraph()
        assert len(maximal_simulation(empty, empty, Variant.S)) == 0

    def test_self_loop_simulation(self):
        g = from_edges([("a", "a")], {"a": "X"})
        h = from_edges([("b", "b")], {"b": "X"})
        for variant in (Variant.S, Variant.B, Variant.DP, Variant.BJ):
            assert ("a", "b") in maximal_simulation(g, h, variant)

    def test_self_loop_vs_plain_node(self):
        g = from_edges([("a", "a")], {"a": "X"})
        h = from_edges([], {"b": "X"})
        # the loop cannot be simulated by an edgeless node
        assert ("a", "b") not in maximal_simulation(g, h, Variant.S)
        # the edgeless node *is* simulated by the loop node
        assert ("b", "a") in maximal_simulation(h, g, Variant.S)


class TestEngineEdgeCases:
    def test_non_convergence_reported(self, small_random_graph):
        cfg = FSimConfig(
            variant=Variant.S,
            label_function="indicator",
            epsilon=1e-12,
            max_iterations=1,
        )
        result = FSimEngine(small_random_graph, small_random_graph, cfg).run()
        assert not result.converged
        assert result.iterations == 1

    def test_candidate_filter(self, small_random_graph):
        g = small_random_graph
        keep = set(list(g.nodes())[:5])
        cfg = FSimConfig(
            variant=Variant.S,
            label_function="indicator",
            candidate_filter=lambda u, v: u in keep,
        )
        result = FSimEngine(g, g, cfg).run()
        assert result.scores
        assert all(u in keep for (u, v) in result.scores)

    def test_pinned_pair_not_updated(self, small_random_graph):
        g = small_random_graph
        u = g.nodes()[0]
        v = g.nodes()[1]
        cfg = FSimConfig(
            variant=Variant.S,
            label_function="indicator",
            pinned_pairs={(u, v): 0.123},
        )
        result = FSimEngine(g, g, cfg).run()
        assert result.scores[(u, v)] == 0.123

    def test_cross_variant_rejected_by_maximal_simulation(self):
        g = from_edges([("a", "b")], {"a": "X", "b": "X"})
        with pytest.raises(ValueError):
            maximal_simulation(g, g, Variant.CROSS)

    def test_theta_one_with_zero_label_function_empty_candidates(self):
        g = from_edges([("a", "b")], {"a": "X", "b": "Y"})
        cfg = FSimConfig(
            variant=Variant.S,
            label_function=lambda a, b: 0.0,
            theta=1.0,
        )
        result = FSimEngine(g, g, cfg).run()
        assert result.scores == {}

    def test_exceptions_share_base_class(self):
        assert issubclass(ConfigError, ReproError)
        assert issubclass(GraphError, ReproError)
        with pytest.raises(ReproError):
            FSimConfig(theta=5.0)


class TestIOFailures:
    def test_load_missing_file(self, tmp_path):
        with pytest.raises(OSError):
            load_graph(tmp_path / "nope.tsv")

    def test_edge_before_node_rejected(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("e\ta\tb\n")
        with pytest.raises(ReproError):
            load_graph(path)


class TestParallelEdgeCases:
    def test_more_workers_than_pairs(self):
        g = from_edges([], {"a": "X", "b": "Y"})
        cfg = FSimConfig(variant=Variant.S, label_function="indicator")
        result = FSimEngine(g, g, cfg).run(workers=4)
        assert result.score("a", "a") == pytest.approx(1.0)
        # isolated nodes: neighbor terms are vacuous (1), labels differ,
        # so the score is w+ + w- = 0.8 < 1 (not exactly simulated).
        assert result.score("a", "b") == pytest.approx(0.8)

    def test_parallel_determinism(self):
        g = random_graph(12, 26, uniform_labels(12, 2, 3), seed=4)
        cfg = FSimConfig(variant=Variant.DP, label_function="indicator")
        first = FSimEngine(g, g, cfg).run(workers=2)
        second = FSimEngine(g, g, cfg).run(workers=3)
        assert first.scores == second.scores
