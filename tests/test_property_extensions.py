"""Hypothesis property tests for noise, closures and operators."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.operators import neighbor_term
from repro.graph.noise import add_label_noise, add_structural_noise, densify
from repro.simulation import Variant
from repro.simulation.bounded import bounded_closure
from tests.test_property_based import labeled_digraphs

FAST = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

ratios = st.floats(min_value=0.0, max_value=0.5, allow_nan=False)
seeds = st.integers(min_value=0, max_value=10_000)


class TestNoiseInvariants:
    @given(g=labeled_digraphs(), ratio=ratios, seed=seeds)
    @FAST
    def test_structural_noise_preserves_nodes_and_labels(self, g, ratio, seed):
        noisy = add_structural_noise(g, ratio, seed)
        assert noisy.nodes() == g.nodes()
        for node in g.nodes():
            assert noisy.label(node) == g.label(node)
        noisy.validate()

    @given(g=labeled_digraphs(), ratio=ratios, seed=seeds)
    @FAST
    def test_label_noise_preserves_structure(self, g, ratio, seed):
        noisy = add_label_noise(g, ratio, seed)
        assert set(noisy.edges()) == set(g.edges())
        assert noisy.num_nodes == g.num_nodes
        noisy.validate()

    @given(g=labeled_digraphs(), seed=seeds,
           factor=st.floats(min_value=1.0, max_value=3.0, allow_nan=False))
    @FAST
    def test_densify_is_superset(self, g, seed, factor):
        dense = densify(g, factor, seed)
        for edge in g.edges():
            assert dense.has_edge(*edge)
        assert dense.num_edges >= g.num_edges
        dense.validate()


class TestClosureInvariants:
    @given(g=labeled_digraphs(), seed=seeds)
    @FAST
    def test_closure_monotone_in_bound(self, g, seed):
        previous = None
        for bound in (1, 2, 3, None):
            closure = bounded_closure(g, bound)
            edges = set(closure.edges())
            if previous is not None:
                assert previous <= edges
            previous = edges

    @given(g=labeled_digraphs())
    @FAST
    def test_bound_one_is_identity(self, g):
        closure = bounded_closure(g, 1)
        assert set(closure.edges()) == set(g.edges())

    @given(g=labeled_digraphs())
    @FAST
    def test_closure_preserves_labels(self, g):
        closure = bounded_closure(g, None)
        for node in g.nodes():
            assert closure.label(node) == g.label(node)


class TestOperatorMonotonicity:
    """Raising any pair weight can never lower a mapped score term."""

    @given(
        weights=st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=4, max_size=4,
        ),
        bump=st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
        variant=st.sampled_from([Variant.S, Variant.DP, Variant.B, Variant.BJ]),
    )
    @FAST
    def test_monotone_in_weights(self, weights, bump, variant):
        s1, s2 = ("a", "b"), ("x", "y")
        table = {
            ("a", "x"): weights[0],
            ("a", "y"): weights[1],
            ("b", "x"): weights[2],
            ("b", "y"): weights[3],
        }
        bumped = {pair: min(1.0, value + bump) for pair, value in table.items()}
        always = lambda a, b: True  # noqa: E731
        low = neighbor_term(
            variant, s1, s2, lambda a, b: table[(a, b)], always, "exact"
        )
        high = neighbor_term(
            variant, s1, s2, lambda a, b: bumped[(a, b)], always, "exact"
        )
        assert high >= low - 1e-12

    @given(
        weights=st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=4, max_size=4,
        ),
        variant=st.sampled_from([Variant.S, Variant.DP, Variant.B, Variant.BJ]),
    )
    @FAST
    def test_term_in_unit_interval(self, weights, variant):
        s1, s2 = ("a", "b"), ("x", "y")
        table = {
            ("a", "x"): weights[0],
            ("a", "y"): weights[1],
            ("b", "x"): weights[2],
            ("b", "y"): weights[3],
        }
        always = lambda a, b: True  # noqa: E731
        for mode in ("greedy", "exact"):
            term = neighbor_term(
                variant, s1, s2, lambda a, b: table[(a, b)], always, mode
            )
            assert 0.0 <= term <= 1.0
