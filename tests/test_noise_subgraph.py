"""Tests for noise injection and subgraph extraction."""

import pytest

from repro.exceptions import GraphError
from repro.graph import (
    add_label_noise,
    add_structural_noise,
    ball,
    densify,
    drop_labels,
    extract_connected_subgraph,
    induced_subgraph,
    path_graph,
    undirected_diameter,
    undirected_distances,
    weakly_connected_components,
)
from repro.graph.noise import MISSING_LABEL


class TestStructuralNoise:
    def test_budget_respected(self, medium_random_graph):
        g = medium_random_graph
        noisy = add_structural_noise(g, 0.2, seed=1)
        # half added, half removed: edge count stays within the budget
        assert abs(noisy.num_edges - g.num_edges) <= int(0.2 * g.num_edges)
        noisy.validate()

    def test_zero_ratio_identity(self, medium_random_graph):
        noisy = add_structural_noise(medium_random_graph, 0.0, seed=1)
        assert noisy.same_structure(medium_random_graph)

    def test_original_untouched(self, medium_random_graph):
        before = medium_random_graph.num_edges
        add_structural_noise(medium_random_graph, 0.5, seed=2)
        assert medium_random_graph.num_edges == before

    def test_pure_additions(self, medium_random_graph):
        noisy = add_structural_noise(medium_random_graph, 0.1, seed=3, add_fraction=1.0)
        assert noisy.num_edges > medium_random_graph.num_edges

    def test_negative_ratio_rejected(self, medium_random_graph):
        with pytest.raises(GraphError):
            add_structural_noise(medium_random_graph, -0.1, seed=1)


class TestLabelNoise:
    def test_changes_requested_fraction(self, medium_random_graph):
        g = medium_random_graph
        noisy = add_label_noise(g, 0.3, seed=1)
        changed = sum(1 for n in g.nodes() if g.label(n) != noisy.label(n))
        assert changed == int(round(0.3 * g.num_nodes))

    def test_changed_labels_differ(self, medium_random_graph):
        g = medium_random_graph
        noisy = add_label_noise(g, 1.0, seed=2)
        for node in g.nodes():
            assert noisy.label(node) != g.label(node)

    def test_custom_alphabet(self, medium_random_graph):
        noisy = add_label_noise(medium_random_graph, 1.0, seed=3, alphabet=["ZZZ"])
        assert set(noisy.labels()) == {"ZZZ"}

    def test_ratio_bounds(self, medium_random_graph):
        with pytest.raises(GraphError):
            add_label_noise(medium_random_graph, 1.5, seed=1)

    def test_drop_labels(self, medium_random_graph):
        noisy = drop_labels(medium_random_graph, 0.25, seed=4)
        dropped = sum(1 for n in noisy.nodes() if noisy.label(n) == MISSING_LABEL)
        assert dropped == int(round(0.25 * medium_random_graph.num_nodes))


class TestDensify:
    def test_reaches_target(self, medium_random_graph):
        g = medium_random_graph
        dense = densify(g, 3.0, seed=1)
        assert dense.num_edges == 3 * g.num_edges
        # densify only adds edges
        for edge in g.edges():
            assert dense.has_edge(*edge)

    def test_factor_one_identity(self, medium_random_graph):
        dense = densify(medium_random_graph, 1.0, seed=1)
        assert dense.same_structure(medium_random_graph)

    def test_capacity_cap(self):
        g = path_graph(4)
        dense = densify(g, 100.0, seed=1)
        assert dense.num_edges <= 12  # 4 * 3 directed pairs

    def test_factor_below_one_rejected(self, medium_random_graph):
        with pytest.raises(GraphError):
            densify(medium_random_graph, 0.5, seed=1)


class TestSubgraphs:
    def test_induced_subgraph(self, medium_random_graph):
        g = medium_random_graph
        nodes = list(g.nodes())[:10]
        sub = induced_subgraph(g, nodes)
        assert sub.num_nodes == 10
        for source, target in sub.edges():
            assert g.has_edge(source, target)
        for source, target in g.edges():
            if source in set(nodes) and target in set(nodes):
                assert sub.has_edge(source, target)

    def test_induced_subgraph_missing_node(self, medium_random_graph):
        with pytest.raises(GraphError):
            induced_subgraph(medium_random_graph, ["not-there"])

    def test_distances_on_path(self):
        g = path_graph(5)
        distances = undirected_distances(g, 0)
        assert distances == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}
        # direction is ignored
        assert undirected_distances(g, 4)[0] == 4

    def test_diameter_path(self):
        assert undirected_diameter(path_graph(5)) == 4

    def test_diameter_disconnected_raises(self):
        from repro.graph import from_edges

        g = from_edges([], {"a": "X", "b": "X"})
        with pytest.raises(GraphError):
            undirected_diameter(g)

    def test_ball_radius(self):
        g = path_graph(7)
        sphere = ball(g, 3, 2)
        assert set(sphere.nodes()) == {1, 2, 3, 4, 5}

    def test_ball_radius_zero(self):
        g = path_graph(3)
        sphere = ball(g, 1, 0)
        assert set(sphere.nodes()) == {1}
        assert sphere.num_edges == 0

    def test_components(self):
        from repro.graph import from_edges

        g = from_edges(
            [("a", "b"), ("c", "d"), ("d", "e")],
            {n: "L" for n in "abcde"},
        )
        comps = weakly_connected_components(g)
        assert [sorted(c) for c in comps] == [["c", "d", "e"], ["a", "b"]]

    def test_extract_connected_subgraph(self, medium_random_graph):
        sub = extract_connected_subgraph(medium_random_graph, 8, seed=5)
        assert sub.num_nodes == 8
        assert len(weakly_connected_components(sub)) == 1

    def test_extract_too_large(self, medium_random_graph):
        with pytest.raises(GraphError):
            extract_connected_subgraph(
                medium_random_graph, medium_random_graph.num_nodes + 1, seed=1
            )

    def test_extract_deterministic(self, medium_random_graph):
        s1 = extract_connected_subgraph(medium_random_graph, 6, seed=9)
        s2 = extract_connected_subgraph(medium_random_graph, 6, seed=9)
        assert s1.same_structure(s2)
