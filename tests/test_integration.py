"""End-to-end integration tests crossing module boundaries."""

import pytest

from repro.core import fsim_matrix
from repro.core.engine import is_one
from repro.datasets import load_dataset
from repro.graph import extract_connected_subgraph, induced_subgraph
from repro.graph.io import load_graph, save_graph
from repro.simulation import Variant, maximal_simulation


class TestDatasetToFramework:
    """Emulated dataset -> FSim -> exact-simulation cross-check."""

    @pytest.fixture(scope="class")
    def yeast(self):
        return load_dataset("yeast", scale=0.5)

    def test_p2_on_emulated_dataset(self, yeast):
        exact = maximal_simulation(yeast, yeast, Variant.S)
        result = fsim_matrix(
            yeast, yeast, Variant.S,
            label_function="indicator", matching_mode="exact",
        )
        for u in yeast.nodes():
            for v in yeast.nodes():
                assert is_one(result.score(u, v)) == ((u, v) in exact)

    def test_subgraph_scores_dominated_by_exact(self, yeast):
        # a verbatim subgraph is s-simulated by the full graph everywhere
        query = extract_connected_subgraph(yeast, 5, seed=3)
        result = fsim_matrix(
            query, yeast, Variant.S,
            label_function="indicator", matching_mode="exact",
        )
        for node in query.nodes():
            assert is_one(result.score(node, node)), node


class TestPersistenceRoundTrip:
    """Graph IO -> FSim -> identical scores."""

    def test_scores_stable_across_save_load(self, tmp_path, small_random_graph):
        # string-ify ids so the text format round-trips exactly
        from repro.graph.builders import relabel_to_integers

        g, _ = relabel_to_integers(small_random_graph)
        renamed = g.copy()
        path = tmp_path / "graph.tsv"
        save_graph(renamed, path)
        loaded = load_graph(path)
        original = fsim_matrix(renamed, renamed, Variant.B,
                               label_function="indicator")
        reloaded = fsim_matrix(loaded, loaded, Variant.B,
                               label_function="indicator")
        for (u, v), value in original.scores.items():
            assert reloaded.score(str(u), str(v)) == pytest.approx(value)


class TestCrossVariantConsistency:
    def test_bj_is_most_conservative_on_exactness(self, small_random_graph):
        g = small_random_graph
        exact_ones = {}
        for variant in (Variant.S, Variant.DP, Variant.B, Variant.BJ):
            result = fsim_matrix(
                g, g, variant, label_function="indicator",
                matching_mode="exact",
            )
            exact_ones[variant] = {
                pair for pair, value in result.scores.items() if is_one(value)
            }
        # Figure 3(b) strictness lifted through P2 to the fractional side.
        assert exact_ones[Variant.BJ] <= exact_ones[Variant.DP]
        assert exact_ones[Variant.BJ] <= exact_ones[Variant.B]
        assert exact_ones[Variant.DP] <= exact_ones[Variant.S]
        assert exact_ones[Variant.B] <= exact_ones[Variant.S]

    def test_symmetric_variants_agree_with_inverse_run(self, small_random_graph):
        g = small_random_graph
        sub = induced_subgraph(g, list(g.nodes())[:8])
        forward = fsim_matrix(sub, g, Variant.BJ, label_function="indicator")
        backward = fsim_matrix(g, sub, Variant.BJ, label_function="indicator")
        for (u, v), value in forward.scores.items():
            assert backward.score(v, u) == pytest.approx(value, abs=1e-9)
