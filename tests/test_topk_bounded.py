"""Tests for the future-work extensions: top-k search and bounded/weak
simulation."""

import pytest

from repro.core import FSimConfig, TopKSearch, fsim_matrix, top_k_similar
from repro.exceptions import ConfigError, GraphError
from repro.graph import from_edges, path_graph
from repro.graph.generators import cycle_graph, random_graph, uniform_labels
from repro.simulation import (
    Variant,
    bounded_closure,
    bounded_simulation,
    fsim_bounded,
    maximal_simulation,
    weak_simulation,
)


class TestTopK:
    @pytest.fixture(scope="class")
    def graph(self):
        return random_graph(18, 40, uniform_labels(18, 3, 5), seed=6)

    def test_matches_full_run(self, graph):
        config = FSimConfig(variant=Variant.B, label_function="indicator")
        full = fsim_matrix(graph, graph, config=config)
        search = TopKSearch(graph, graph, config)
        for query in list(graph.nodes())[:5]:
            result = search.search(query, 3)
            expected = full.top_k(query, 3)
            got_nodes = [node for node, _ in result.partners]
            expected_nodes = [node for node, _ in expected]
            if result.certified:
                # certified set must contain the true top scores
                got_scores = sorted((s for _, s in result.partners), reverse=True)
                exp_scores = sorted((s for _, s in expected), reverse=True)
                for g_score, e_score in zip(got_scores, exp_scores):
                    assert g_score == pytest.approx(e_score, abs=0.05)
            assert len(got_nodes) == min(3, len(expected_nodes))

    def test_self_always_first(self, graph):
        result = top_k_similar(
            graph, graph, 0, 1, variant=Variant.BJ, label_function="indicator"
        )
        assert result.partners[0][0] == 0
        assert result.partners[0][1] == pytest.approx(1.0)

    def test_early_termination_saves_iterations(self, graph):
        config = FSimConfig(
            variant=Variant.S, label_function="indicator", epsilon=1e-6
        )
        full = fsim_matrix(graph, graph, config=config)
        result = TopKSearch(graph, graph, config).search(0, 2)
        assert result.iterations <= full.iterations

    def test_invalid_k(self, graph):
        with pytest.raises(ConfigError):
            top_k_similar(graph, graph, 0, 0)

    def test_unknown_query(self, graph):
        with pytest.raises(ConfigError):
            top_k_similar(graph, graph, "ghost", 2)

    def test_k_larger_than_candidates(self, graph):
        result = top_k_similar(
            graph, graph, 0, 10_000, label_function="indicator", theta=1.0
        )
        assert len(result.partners) <= 10_000


class TestBoundedClosure:
    def test_one_hop_is_original(self):
        g = path_graph(4)
        closure = bounded_closure(g, 1)
        assert set(closure.edges()) == set(g.edges())

    def test_two_hops(self):
        g = path_graph(4)
        closure = bounded_closure(g, 2)
        assert closure.has_edge(0, 2)
        assert not closure.has_edge(0, 3)

    def test_unbounded_reachability(self):
        g = path_graph(4)
        closure = bounded_closure(g, None)
        assert closure.has_edge(0, 3)

    def test_cycle_closure_complete(self):
        g = cycle_graph(3)
        closure = bounded_closure(g, None)
        # every node reaches every node (including itself around the loop)
        assert closure.num_edges == 9

    def test_invalid_bound(self):
        with pytest.raises(GraphError):
            bounded_closure(path_graph(2), 0)


class TestBoundedSimulation:
    def build(self):
        query = from_edges([("a", "b")], {"a": "A", "b": "B"})
        data = from_edges(
            [("x", "m"), ("m", "y")], {"x": "A", "m": "M", "y": "B"}
        )
        return query, data

    def test_bound_controls_matching(self):
        query, data = self.build()
        assert ("a", "x") not in bounded_simulation(query, data, bound=1)
        assert ("a", "x") in bounded_simulation(query, data, bound=2)

    def test_weak_equals_large_bound(self):
        query, data = self.build()
        weak = set(weak_simulation(query, data).pairs())
        large = set(bounded_simulation(query, data, bound=10).pairs())
        assert weak == large

    def test_bound_one_out_only_simulation(self):
        # bounded simulation with bound=1 considers out-edges only, so it
        # is *coarser* than Definition 1 (which also constrains in-edges).
        g1 = from_edges([("p", "u")], {"p": "P", "u": "U"})
        g2 = from_edges([], {"v": "U"})
        assert ("u", "v") in bounded_simulation(g1, g2, bound=1)
        assert ("u", "v") not in maximal_simulation(g1, g2, Variant.S)

    def test_monotone_in_bound(self):
        data = random_graph(14, 30, uniform_labels(14, 3, 7), seed=8)
        query = path_graph(3, labels=["L0", "L1", "L2"])
        previous = set()
        for bound in (1, 2, 3):
            current = set(bounded_simulation(query, data, bound).pairs())
            assert previous <= current
            previous = current

    def test_fractional_bounded_definiteness(self):
        query, data = self.build()
        result = fsim_bounded(query, data, bound=2)
        assert result.score("a", "x") == pytest.approx(1.0)
        shallow = fsim_bounded(query, data, bound=1)
        assert shallow.score("a", "x") < 1.0

    def test_exact_agrees_with_fractional(self):
        from repro.simulation.bounded import exact_agrees_with_fractional

        query = path_graph(3, labels=["L0", "L1", "L0"])
        data = random_graph(10, 22, uniform_labels(10, 2, 9), seed=10)
        assert exact_agrees_with_fractional(query, data, bound=2)
