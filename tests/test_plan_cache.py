"""Cache correctness of the amortized compilation layer.

The invariant under test: mutating a graph or varying the configuration
can **never** serve a stale plan -- every cached artifact is keyed on
the graph's mutation counter (plans) or derived per compile from the
cached table (theta feasibility), so batched and cached runs are
bitwise identical to cold runs.
"""

import gc

import pytest

from repro.core import (
    FSimConfig,
    FSimEngine,
    fsim_matrix,
    fsim_matrix_many,
)
from repro.core.plan import (
    clear_plan_caches,
    label_similarity_table,
    lower_graph,
    plan_cache_stats,
)
from repro.graph.generators import random_graph, uniform_labels
from repro.labels.similarity import get_label_function
from repro.simulation import Variant


@pytest.fixture
def graph():
    return random_graph(14, 30, uniform_labels(14, 3, seed=41), seed=42)


@pytest.fixture
def other():
    return random_graph(16, 36, uniform_labels(16, 3, seed=43), seed=44)


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_plan_caches()
    yield
    clear_plan_caches()


class TestPlanCache:
    def test_plan_reused_until_mutation(self, graph):
        plan1 = lower_graph(graph)
        plan2 = lower_graph(graph)
        assert plan1 is plan2
        graph.add_edge(graph.nodes()[0], graph.nodes()[5])
        plan3 = lower_graph(graph)
        assert plan3 is not plan1
        assert plan_cache_stats()["plan_misses"] == 2

    def test_every_mutator_invalidates(self, graph):
        mutations = [
            lambda g: g.add_node("fresh", label="L0"),
            lambda g: g.add_edge("fresh", g.nodes()[0]),
            lambda g: g.set_label("fresh", "L1"),
            lambda g: g.remove_edge("fresh", g.nodes()[0]),
            lambda g: g.remove_node("fresh"),
            lambda g: g.sort_adjacency(),
        ]
        for mutate in mutations:
            before = lower_graph(graph)
            mutate(graph)
            assert lower_graph(graph) is not before

    def test_mutation_never_serves_stale_scores(self, graph):
        config = FSimConfig(variant=Variant.BJ, backend="numpy")
        fsim_matrix(graph, graph, config=config)  # warm the caches
        graph.add_edge(graph.nodes()[2], graph.nodes()[9])
        cached = fsim_matrix(graph, graph, config=config)
        clear_plan_caches()
        cold = fsim_matrix(graph, graph, config=config)
        assert cached.scores == cold.scores
        assert cached.iterations == cold.iterations

    def test_cache_entry_dropped_with_graph(self):
        graph = random_graph(8, 14, uniform_labels(8, 2, seed=45), seed=46)
        lower_graph(graph)
        assert plan_cache_stats()["plans_cached"] == 1
        del graph
        gc.collect()
        assert plan_cache_stats()["plans_cached"] == 0

    def test_plans_shared_across_queries(self, graph, other):
        config = FSimConfig(variant=Variant.S, backend="numpy")
        fsim_matrix(graph, other, config=config)
        misses = plan_cache_stats()["plan_misses"]
        fsim_matrix(graph, other, config=config)
        stats = plan_cache_stats()
        assert stats["plan_misses"] == misses  # second query: hits only
        assert stats["plan_hits"] >= 2


class TestLabelTableCache:
    def test_table_cached_per_function_and_alphabets(self):
        fn = get_label_function("jaro_winkler")
        table1 = label_similarity_table(fn, ["L0", "L1"], ["L0", "L2"])
        table2 = label_similarity_table(fn, ["L0", "L1"], ["L0", "L2"])
        assert table1 is table2
        other_fn = get_label_function("indicator")
        table3 = label_similarity_table(other_fn, ["L0", "L1"], ["L0", "L2"])
        assert table3 is not table1

    def test_theta_change_never_stales(self, graph):
        """Feasibility is derived per compile; theta sweeps stay exact."""
        for theta in (0.0, 0.6, 1.0):
            config = FSimConfig(variant=Variant.S, theta=theta,
                                backend="numpy")
            warm = fsim_matrix(graph, graph, config=config)
            clear_plan_caches()
            cold = fsim_matrix(graph, graph, config=config)
            assert warm.scores == cold.scores

    def test_cached_table_is_readonly(self):
        fn = get_label_function("indicator")
        table = label_similarity_table(fn, ["L0"], ["L0", "L1"])
        with pytest.raises(ValueError):
            table[0, 0] = 0.5


class TestBatchApis:
    def test_fsim_matrix_many_matches_per_query(self, graph, other):
        config = FSimConfig(variant=Variant.B, label_function="indicator")
        queries = [
            random_graph(6, 10, uniform_labels(6, 3, seed=s), seed=s + 1)
            for s in (51, 53, 55)
        ]
        batched = fsim_matrix_many(queries, other, config=config)
        for query, result in zip(queries, batched):
            solo = fsim_matrix(query, other, config=config)
            assert result.scores == solo.scores
            assert result.iterations == solo.iterations
            assert result.num_candidates == solo.num_candidates

    def test_fsim_matrix_many_parallel_matches_serial(self, other):
        config = FSimConfig(
            variant=Variant.BJ, label_function="indicator", backend="numpy",
        )
        queries = [
            random_graph(6, 10, uniform_labels(6, 3, seed=s), seed=s + 1)
            for s in (61, 63, 65, 67)
        ]
        serial = fsim_matrix_many(queries, other, config=config)
        parallel = fsim_matrix_many(queries, other, config=config, workers=2)
        for one, two in zip(serial, parallel):
            assert one.scores == two.scores
            assert one.iterations == two.iterations
        # The parallel results must still answer pruned pairs (fallback
        # reattached in the parent after crossing the process boundary).
        assert parallel[0].score("nope", "nope") == 0.0

    def test_engine_parity_after_cache_warm(self, graph, other):
        """A warm cache changes nothing observable vs the reference."""
        config = FSimConfig(variant=Variant.DP)
        fsim_matrix(graph, other, config=config.with_options(backend="numpy"))
        warm = fsim_matrix(
            graph, other, config=config.with_options(backend="numpy")
        )
        reference = FSimEngine(
            graph, other, config.with_options(backend="python")
        ).run()
        assert warm.scores.keys() == reference.scores.keys()
        for pair, value in reference.scores.items():
            assert abs(warm.scores[pair] - value) <= 1e-9


class TestAppBatchApis:
    def test_match_many_matches_per_query(self, other):
        from repro.apps.pattern_matching.matcher import FSimMatcher
        from repro.apps.pattern_matching.queries import (
            Scenario,
            generate_workload,
        )

        workload = generate_workload(
            other, Scenario.EXACT, num_queries=4,
            min_size=3, max_size=6, seed=7,
        )
        matcher = FSimMatcher(Variant.S)
        queries = [query.graph for query in workload]
        batched = matcher.match_many(queries, other)
        assert batched == [matcher.match(query, other) for query in queries]

    def test_align_many_matches_per_pair(self, graph):
        from repro.apps.alignment.aligners import FSimAligner
        from repro.apps.alignment.evolving import evolve_graph

        versions = [
            evolve_graph(graph, seed=71, name="v2"),
            evolve_graph(graph, seed=72, name="v3"),
        ]
        aligner = FSimAligner(Variant.B)
        batched = aligner.align_many(versions, graph)
        assert batched == [
            aligner.align(version, graph) for version in versions
        ]

    def test_venue_variants_share_one_graph(self, graph):
        from repro.apps.similarity.fsim_venues import FSimVenueSimilarity

        measures = FSimVenueSimilarity.for_variants(
            graph, (Variant.B, Variant.BJ)
        )
        assert set(measures) == {Variant.B, Variant.BJ}
        assert measures[Variant.B].name == "FSimb"
        assert measures[Variant.BJ].name == "FSimbj"
        # Both variants lower the graph once through the shared cache.
        assert plan_cache_stats()["plan_misses"] <= 1
