"""Tests for score analysis helpers and edge-label reification."""

import pytest

from repro.core import fsim_matrix
from repro.core.analysis import (
    compare,
    exact_pairs,
    mutual_classes,
    summarize,
    top_pairs,
)
from repro.graph import from_edges
from repro.graph.builders import reify_edge_labels
from repro.graph.generators import cycle_graph
from repro.simulation import Variant, maximal_simulation


@pytest.fixture(scope="module")
def result(small_random_graph_module):
    g = small_random_graph_module
    return fsim_matrix(
        g, g, Variant.B, label_function="indicator", matching_mode="exact"
    )


@pytest.fixture(scope="module")
def small_random_graph_module():
    from repro.graph.generators import random_graph, uniform_labels

    return random_graph(15, 30, uniform_labels(15, 3, seed=41), seed=42)


class TestSummarize:
    def test_summary_fields(self, result):
        summary = summarize(result)
        assert summary.num_pairs == len(result.scores)
        assert 0.0 <= summary.minimum <= summary.mean <= summary.maximum <= 1.0
        q1, q2, q3 = summary.quartiles
        assert q1 <= q2 <= q3
        assert summary.num_exact >= 15  # at least the diagonal
        assert "pairs" in summary.render()

    def test_empty_summary(self):
        from repro.core.engine import FSimResult
        from repro.core.config import FSimConfig

        empty = FSimResult(scores={}, config=FSimConfig(), iterations=0,
                           converged=True)
        summary = summarize(empty)
        assert summary.num_pairs == 0


class TestExactAndClasses:
    def test_exact_pairs_match_relation(self, result, small_random_graph_module):
        g = small_random_graph_module
        relation = maximal_simulation(g, g, Variant.B)
        assert exact_pairs(result) == set(relation.pairs())

    def test_mutual_classes_on_cycle(self):
        g = cycle_graph(4)
        res = fsim_matrix(g, g, Variant.B, label_function="indicator")
        classes = mutual_classes(res)
        assert len(set(classes.values())) == 1

    def test_compare_self_is_identity(self, result):
        metrics = compare(result, result)
        assert metrics["pearson"] == pytest.approx(1.0)
        assert metrics["max_abs_diff"] == 0.0

    def test_top_pairs_excludes_diagonal(self, result):
        ranked = top_pairs(result, k=5)
        assert all(u != v for (u, v), _ in ranked)
        values = [value for _, value in ranked]
        assert values == sorted(values, reverse=True)


class TestReification:
    def build(self):
        graph = from_edges(
            [("a", "b"), ("b", "c")], {"a": "X", "b": "Y", "c": "X"}
        )
        labels = {("a", "b"): "likes", ("b", "c"): "knows"}
        return graph, reify_edge_labels(graph, labels)

    def test_structure(self):
        graph, reified = self.build()
        assert reified.num_nodes == graph.num_nodes + graph.num_edges
        assert reified.num_edges == 2 * graph.num_edges
        assert reified.label(("edge", "a", "b")) == "likes"
        assert reified.has_edge("a", ("edge", "a", "b"))
        assert reified.has_edge(("edge", "a", "b"), "b")

    def test_default_label(self):
        graph = from_edges([("a", "b")], {"a": "X", "b": "X"})
        reified = reify_edge_labels(graph, {})
        assert reified.label(("edge", "a", "b")) == "edge"

    def test_edge_labels_constrain_simulation(self):
        # same node labels, different edge labels: simulation must fail
        # on the reified graphs though it holds on the plain ones.
        g1 = from_edges([("a", "b")], {"a": "X", "b": "Y"})
        g2 = from_edges([("c", "d")], {"c": "X", "d": "Y"})
        plain = maximal_simulation(g1, g2, Variant.S)
        assert ("a", "c") in plain
        reified1 = reify_edge_labels(g1, {("a", "b"): "likes"})
        reified2 = reify_edge_labels(g2, {("c", "d"): "hates"})
        constrained = maximal_simulation(reified1, reified2, Variant.S)
        assert ("a", "c") not in constrained

    def test_matching_edge_labels_preserve_simulation(self):
        g1 = from_edges([("a", "b")], {"a": "X", "b": "Y"})
        g2 = from_edges([("c", "d")], {"c": "X", "d": "Y"})
        reified1 = reify_edge_labels(g1, {("a", "b"): "likes"})
        reified2 = reify_edge_labels(g2, {("c", "d"): "likes"})
        relation = maximal_simulation(reified1, reified2, Variant.S)
        assert ("a", "c") in relation
