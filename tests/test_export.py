"""Tests for score/graph export helpers (matrix, TSV, DOT)."""

import pytest

from repro.core import fsim_matrix
from repro.core.engine import load_scores
from repro.graph import figure1_graphs, match_to_dot, save_dot, to_dot
from repro.simulation import Variant


@pytest.fixture(scope="module")
def scored():
    pattern, data = figure1_graphs()
    result = fsim_matrix(pattern, data, Variant.S, label_function="indicator")
    return pattern, data, result


class TestMatrix:
    def test_shape_and_values(self, scored):
        pattern, data, result = scored
        rows = ["u"]
        cols = ["v1", "v2", "v3", "v4"]
        matrix = result.as_matrix(rows, cols)
        assert matrix.shape == (1, 4)
        for j, v in enumerate(cols):
            assert matrix[0, j] == pytest.approx(result.score("u", v))

    def test_unmaintained_pairs_fallback(self, scored):
        pattern, data, result = scored
        theta_result = fsim_matrix(
            pattern, data, Variant.S, label_function="indicator", theta=1.0
        )
        matrix = theta_result.as_matrix(["u"], ["v1_h"])  # label mismatch
        assert matrix[0, 0] == 0.0


class TestScoresTSV:
    def test_round_trip(self, scored, tmp_path):
        _, _, result = scored
        path = tmp_path / "scores.tsv"
        result.save_scores(path)
        loaded = load_scores(path)
        assert len(loaded) == len(result.scores)
        assert loaded[("u", "v4")] == pytest.approx(result.score("u", "v4"))


class TestDot:
    def test_document_structure(self, scored):
        pattern, _, _ = scored
        text = to_dot(pattern)
        assert text.startswith("digraph")
        assert text.rstrip().endswith("}")
        assert '"u"' in text
        assert "->" in text

    def test_highlight(self, scored):
        pattern, _, _ = scored
        text = to_dot(pattern, highlight={"u": "red"})
        assert "fillcolor" in text
        assert '"red"' in text

    def test_quote_escaping(self):
        from repro.graph import LabeledDigraph

        g = LabeledDigraph()
        g.add_node('we"ird', 'la"bel')
        text = to_dot(g)
        assert '\\"' in text

    def test_match_rendering(self, scored):
        pattern, data, _ = scored
        match = {"u": "v4", "h1": "v4_h1", "h2": "v4_h2", "p1": "v4_p"}
        text = match_to_dot(pattern, data, match)
        assert "cluster_query" in text
        assert "cluster_data" in text
        assert "style=dashed" in text
        # matched-region edges only
        assert text.count("lightgreen") == len(match)

    def test_save_dot(self, scored, tmp_path):
        pattern, _, _ = scored
        path = tmp_path / "g.dot"
        save_dot(pattern, path)
        assert path.read_text().startswith("digraph")
