"""Tests for the dataset emulators."""

import pytest

from repro.datasets import (
    DATASET_NAMES,
    dataset_spec,
    dataset_table,
    load_dataset,
)
from repro.exceptions import ConfigError
from repro.graph.stats import compute_stats


class TestRegistry:
    def test_all_eight_datasets_present(self):
        assert len(DATASET_NAMES) == 8
        for name in DATASET_NAMES:
            assert dataset_spec(name).name == name

    def test_unknown_dataset(self):
        with pytest.raises(ConfigError):
            dataset_spec("imdb")

    def test_case_insensitive(self):
        assert dataset_spec("NELL").name == "nell"

    def test_size_ordering_preserved(self):
        # The paper's ordering: yeast smallest ... acmcit largest (edges).
        edges = [dataset_spec(name).num_edges for name in DATASET_NAMES]
        assert edges[0] == min(edges)
        assert edges[-1] == max(edges)

    def test_paper_row_recorded(self):
        spec = dataset_spec("acmcit")
        assert spec.paper_edges == 9_671_895
        assert spec.paper_labels == 72_000


class TestBuild:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_build_matches_spec(self, name):
        spec = dataset_spec(name)
        graph = load_dataset(name)
        assert graph.num_nodes == spec.num_nodes
        # power-law generation may undershoot slightly on edges
        assert graph.num_edges >= 0.8 * spec.num_edges
        assert len(graph.labels()) <= spec.num_labels
        graph.validate()

    def test_deterministic(self):
        assert load_dataset("nell").same_structure(load_dataset("nell"))
        assert not load_dataset("nell").same_structure(
            load_dataset("nell", seed=99)
        )

    def test_scaling(self):
        half = load_dataset("amazon", scale=0.5)
        full = load_dataset("amazon")
        assert half.num_nodes < full.num_nodes

    def test_scale_must_be_positive(self):
        with pytest.raises(ConfigError):
            dataset_spec("yeast", scale=0)

    def test_dense_datasets_denser_than_sparse(self):
        wiki = compute_stats(load_dataset("wiki"))
        nell = compute_stats(load_dataset("nell"))
        assert wiki.avg_degree > 5 * nell.avg_degree

    def test_hubby_datasets_have_hubs(self):
        jdk = compute_stats(load_dataset("jdk"))
        assert jdk.max_in_degree > 3 * jdk.avg_degree

    def test_dataset_table_renders(self):
        table = dataset_table(scale=0.5)
        for name in DATASET_NAMES:
            assert name in table
