"""Tests for the seeded random graph generators."""

import pytest

from repro.exceptions import GraphError
from repro.graph import (
    complete_bipartite,
    cycle_graph,
    path_graph,
    power_law_graph,
    random_dag,
    random_graph,
    star_graph,
    uniform_labels,
    zipf_labels,
)


class TestLabelGenerators:
    def test_uniform_labels_deterministic(self):
        assert uniform_labels(20, 4, seed=1) == uniform_labels(20, 4, seed=1)
        assert uniform_labels(20, 4, seed=1) != uniform_labels(20, 4, seed=2)

    def test_uniform_labels_alphabet(self):
        labels = uniform_labels(200, 5, seed=3)
        assert set(labels) <= {f"L{i}" for i in range(5)}

    def test_zipf_labels_skewed(self):
        labels = zipf_labels(2000, 10, seed=4)
        counts = {label: labels.count(label) for label in set(labels)}
        # The most frequent label should dominate the least frequent.
        assert counts.get("L0", 0) > counts.get("L9", 0)


class TestRandomGraph:
    def test_exact_size(self):
        g = random_graph(30, 60, uniform_labels(30, 3, 1), seed=2)
        assert g.num_nodes == 30
        assert g.num_edges == 60
        g.validate()

    def test_deterministic(self):
        g1 = random_graph(20, 40, uniform_labels(20, 3, 1), seed=9)
        g2 = random_graph(20, 40, uniform_labels(20, 3, 1), seed=9)
        assert g1.same_structure(g2)

    def test_no_self_loops_by_default(self):
        g = random_graph(10, 30, uniform_labels(10, 2, 1), seed=5)
        assert all(s != t for s, t in g.edges())

    def test_dense_request_filled_exhaustively(self):
        g = random_graph(5, 20, uniform_labels(5, 1, 1), seed=6)
        assert g.num_edges == 20  # of max 20

    def test_infeasible_request_rejected(self):
        with pytest.raises(GraphError):
            random_graph(3, 100, uniform_labels(3, 1, 1), seed=1)

    def test_label_count_mismatch_rejected(self):
        with pytest.raises(GraphError):
            random_graph(5, 4, ["A"] * 4, seed=1)


class TestPowerLaw:
    def test_size_and_determinism(self):
        g1 = power_law_graph(50, 2, uniform_labels(50, 4, 1), seed=3)
        g2 = power_law_graph(50, 2, uniform_labels(50, 4, 1), seed=3)
        assert g1.num_nodes == 50
        assert g1.same_structure(g2)
        g1.validate()

    def test_heavy_tail(self):
        g = power_law_graph(300, 2, uniform_labels(300, 2, 1), seed=7)
        max_in = max(g.in_degree(n) for n in g.nodes())
        avg_in = g.num_edges / g.num_nodes
        assert max_in > 5 * avg_in  # hub formation


class TestDag:
    def test_acyclic(self):
        g = random_dag(25, 60, uniform_labels(25, 3, 1), seed=8)
        assert g.num_edges == 60
        assert all(s < t for s, t in g.edges())

    def test_capacity_check(self):
        with pytest.raises(GraphError):
            random_dag(4, 10, uniform_labels(4, 1, 1), seed=1)


class TestFixedShapes:
    def test_star_outward(self):
        g = star_graph(4)
        assert g.out_degree(0) == 4
        assert g.in_degree(0) == 0

    def test_star_inward(self):
        g = star_graph(4, outward=False)
        assert g.in_degree(0) == 4
        assert g.out_degree(0) == 0

    def test_cycle(self):
        g = cycle_graph(5)
        assert g.num_edges == 5
        assert all(g.out_degree(n) == 1 and g.in_degree(n) == 1 for n in g.nodes())

    def test_path(self):
        g = path_graph(4)
        assert g.num_edges == 3
        assert g.out_degree(3) == 0

    def test_single_node_shapes(self):
        assert cycle_graph(1).num_edges == 1  # self loop
        assert path_graph(1).num_edges == 0
        with pytest.raises(GraphError):
            cycle_graph(0)

    def test_complete_bipartite(self):
        g = complete_bipartite(3, 2)
        assert g.num_edges == 6
        assert g.out_degree(("l", 0)) == 2
        assert g.in_degree(("r", 1)) == 3
