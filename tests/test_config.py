"""Tests for FSimConfig validation and presets."""

import math

import pytest

from repro.core.config import FSimConfig, case_study_default, paper_default
from repro.exceptions import ConfigError
from repro.simulation import Variant


class TestValidation:
    def test_defaults_are_paper_defaults(self):
        cfg = FSimConfig()
        assert cfg.w_out == 0.4
        assert cfg.w_in == 0.4
        assert cfg.w_label == pytest.approx(0.2)
        assert cfg.variant is Variant.S

    def test_variant_coercion(self):
        assert FSimConfig(variant="bj").variant is Variant.BJ

    @pytest.mark.parametrize("w_out,w_in", [(1.0, 0.0), (-0.1, 0.4), (0.5, 0.5)])
    def test_weight_bounds(self, w_out, w_in):
        with pytest.raises(ConfigError):
            FSimConfig(w_out=w_out, w_in=w_in)

    def test_zero_total_weight_rejected(self):
        with pytest.raises(ConfigError):
            FSimConfig(w_out=0.0, w_in=0.0)

    @pytest.mark.parametrize("theta", [-0.1, 1.1])
    def test_theta_bounds(self, theta):
        with pytest.raises(ConfigError):
            FSimConfig(theta=theta)

    def test_alpha_beta_bounds(self):
        with pytest.raises(ConfigError):
            FSimConfig(alpha=1.5)
        with pytest.raises(ConfigError):
            FSimConfig(beta=-0.2)

    def test_epsilon_positive(self):
        with pytest.raises(ConfigError):
            FSimConfig(epsilon=0.0)

    def test_matching_mode_checked(self):
        with pytest.raises(ConfigError):
            FSimConfig(matching_mode="sloppy")

    def test_normalizer_checked(self):
        with pytest.raises(ConfigError):
            FSimConfig(normalizer="weird")

    def test_max_iterations_positive(self):
        with pytest.raises(ConfigError):
            FSimConfig(max_iterations=0)


class TestIterationBudget:
    def test_corollary1_formula(self):
        cfg = FSimConfig(w_out=0.4, w_in=0.4, epsilon=0.01)
        expected = math.ceil(math.log(0.01) / math.log(0.8))
        assert cfg.iteration_budget() == expected

    def test_explicit_override(self):
        cfg = FSimConfig(max_iterations=3)
        assert cfg.iteration_budget() == 3

    def test_smaller_weights_converge_faster(self):
        slow = FSimConfig(w_out=0.45, w_in=0.45)
        fast = FSimConfig(w_out=0.1, w_in=0.1)
        assert fast.iteration_budget() < slow.iteration_budget()


class TestHelpers:
    def test_with_options(self):
        cfg = FSimConfig().with_options(theta=1.0, variant=Variant.B)
        assert cfg.theta == 1.0
        assert cfg.variant is Variant.B
        # original untouched (frozen dataclass)
        assert FSimConfig().theta == 0.0

    def test_paper_default(self):
        cfg = paper_default(Variant.BJ, theta=1.0)
        assert cfg.variant is Variant.BJ
        assert cfg.theta == 1.0
        assert cfg.label_function == "jaro_winkler"

    def test_case_study_default_uses_indicator(self):
        cfg = case_study_default(Variant.S)
        assert cfg.label_function == "indicator"

    def test_resolved_label_function(self):
        from repro.labels import jaro_winkler_similarity

        assert FSimConfig().resolved_label_function is jaro_winkler_similarity
